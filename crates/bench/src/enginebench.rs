//! Engine micro-benchmarks, shared between `cargo bench` and `repro
//! bench`.
//!
//! The bodies live here (not in `benches/engine.rs`) so the `repro`
//! binary can run the same workloads and write a machine-readable
//! baseline (`BENCH_engine.json`) without a second copy of the
//! scenarios. One number per layer:
//!
//! * `event_queue/{wheel,heap}_schedule_pop_10k` — the scheduler alone,
//!   once per backend;
//! * `event_queue/{wheel,heap}_pause_timer_churn_10k` — per-channel
//!   short-deadline timers refreshed in place (`reschedule`), with
//!   occasional fires and cancels: the coalesced PFC pause-timer access
//!   pattern of the datapath;
//! * `datapath/line2_saturated_1ms` — full per-packet pipeline on the
//!   smallest topology that exercises PFC;
//! * `telemetry/line2_off_1ms` — the same line with telemetry explicitly
//!   disabled: the instrumentation-off overhead guard (must stay within
//!   ≤2% of the datapath number);
//! * `fabric/fat_tree4_permutation_200us` — routing + arbitration on a
//!   16-host fat-tree;
//! * `fabric/fat_tree8_torlocal_100us{,_p2,_p4}` — the identical
//!   128-host k=8 fat-tree scenario serial and at 2/4 partitions:
//!   directly comparable events/sec for the partitioned engine (on a
//!   single-core host the `_pN` numbers measure split/merge overhead);
//! * `hybrid/fat_tree8_steady_1ms{,_fullpkt}` — the hybrid fluid/packet
//!   backend on its intended steady-state workload (one intra-rack CBR
//!   flow per k=8 edge switch) and its full-packet twin; both rows use
//!   the same simulated-event total, so their events/sec ratio is the
//!   hybrid speedup;
//! * `detector/deadlock_scan_fat_tree4_incast_200us` — the deadlock
//!   analyzer under heavy pause churn (100 ns scan cadence, no true
//!   deadlock);
//! * `sweep/square_arena_reuse_8` — eight Fig. 4 runs leasing one
//!   `SimArenas`, the steady-state cost of a sweep iteration;
//! * `serve/what_if_fat_tree4_window100us` — resident-session what-if
//!   query latency (checkpoint → probe resume → 100 µs bounded run) on
//!   the golden fat-tree, in queries/sec;
//! * `serve/route_update_fat_tree4` — in-place route-update commit rate
//!   on the same resident session, in updates/sec.

use criterion::{black_box, take_results, BenchResult, Criterion, Throughput};

use pfcsim_net::config::SimConfig;
use pfcsim_net::flow::FlowSpec;
use pfcsim_net::sim::{SimArenas, SimBuilder};
use pfcsim_net::telemetry::TelemetryConfig;
use pfcsim_simcore::event::{Backend, EventId, EventQueue};
use pfcsim_simcore::rng::SimRng;
use pfcsim_simcore::time::{SimDuration, SimTime};
use pfcsim_topo::builders::{fat_tree, line, LinkSpec};

fn event_queue_bench(c: &mut Criterion, samples: usize) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.sample_size(samples);
    for backend in [Backend::Wheel, Backend::Heap] {
        g.bench_function(&format!("{}_schedule_pop_10k", backend.name()), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_backend(backend);
                let mut rng = SimRng::new(7);
                for i in 0..10_000u64 {
                    q.schedule(SimTime::from_ns(rng.gen_range(1_000_000)), i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            })
        });
        // The coalesced PFC pause-timer pattern: each channel keeps at
        // most one pending expiry, and every pause refresh *reschedules*
        // it in place (a possibly-dead handle replaced by a fresh
        // schedule); timers occasionally fire (pop) or are cancelled on
        // RESUME. Short deadlines, high refresh ratio.
        g.bench_function(&format!("{}_pause_timer_churn_10k", backend.name()), |b| {
            b.iter(|| {
                const CHANNELS: usize = 64;
                let mut q = EventQueue::with_backend(backend);
                let mut rng = SimRng::new(11);
                let mut slot: [Option<EventId>; CHANNELS] = [None; CHANNELS];
                let mut sum = 0u64;
                for i in 0..10_000u64 {
                    if i % 4 == 0 {
                        if let Some((_, v)) = q.pop() {
                            sum = sum.wrapping_add(v);
                        }
                    }
                    let ch = rng.gen_range(CHANNELS as u64) as usize;
                    let deadline = q.now() + SimDuration::from_ns(1 + rng.gen_range(65_536));
                    match slot[ch] {
                        Some(id) if q.reschedule(id, deadline) => {}
                        _ => slot[ch] = Some(q.schedule(deadline, ch as u64)),
                    }
                    if i % 16 == 15 {
                        // RESUME arrived first: cancel the channel's timer.
                        let ch = rng.gen_range(CHANNELS as u64) as usize;
                        if let Some(id) = slot[ch].take() {
                            q.cancel(id);
                        }
                    }
                }
                while let Some((_, v)) = q.pop() {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

fn line_forwarding_bench(c: &mut Criterion, samples: usize) {
    // A saturated 2-switch line: pure datapath throughput (events/sec).
    let built = line(2, LinkSpec::default());
    let mut g = c.benchmark_group("datapath");
    g.sample_size(samples);
    // Pre-measure the event count once so the group can report events/sec.
    let events = {
        let mut sim = SimBuilder::new(&built.topo)
            .config(SimConfig::default())
            .build();
        sim.add_flow(FlowSpec::infinite(0, built.hosts[0], built.hosts[1]));
        sim.add_flow(FlowSpec::infinite(1, built.hosts[1], built.hosts[0]));
        sim.run(SimTime::from_ms(1)).events
    };
    g.throughput(Throughput::Elements(events));
    g.bench_function("line2_saturated_1ms", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(&built.topo)
                .config(SimConfig::default())
                .build();
            sim.add_flow(FlowSpec::infinite(0, built.hosts[0], built.hosts[1]));
            sim.add_flow(FlowSpec::infinite(1, built.hosts[1], built.hosts[0]));
            let r = sim.run(SimTime::from_ms(1));
            black_box(r.events)
        })
    });
    g.finish();
}

fn telemetry_off_bench(c: &mut Criterion, samples: usize) {
    // The same saturated line as `datapath/line2_saturated_1ms`, built
    // through the builder with telemetry explicitly disabled. The layer's
    // whole hot-path cost when off is one null-check per traced event, so
    // this workload must stay within noise (≤2%) of the plain datapath
    // number — the instrumentation-off overhead guard.
    let built = line(2, LinkSpec::default());
    let run_once = || {
        let mut sim = SimBuilder::new(&built.topo)
            .config(SimConfig::default())
            .telemetry(TelemetryConfig::default()) // enabled: false
            .build();
        sim.add_flow(FlowSpec::infinite(0, built.hosts[0], built.hosts[1]));
        sim.add_flow(FlowSpec::infinite(1, built.hosts[1], built.hosts[0]));
        sim.run(SimTime::from_ms(1)).events
    };
    let events = run_once();
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(events));
    g.bench_function("line2_off_1ms", |b| b.iter(|| black_box(run_once())));
    g.finish();
}

fn fat_tree_bench(c: &mut Criterion, samples: usize) {
    let built = fat_tree(4, LinkSpec::default());
    let run_once = || {
        let tables = pfcsim_topo::routing::up_down_tables(&built.topo);
        let mut cfg = SimConfig::default();
        cfg.sample_interval = None; // measure datapath, not sampling
        let mut sim = SimBuilder::new(&built.topo)
            .config(cfg)
            .tables(tables)
            .build();
        let n = built.hosts.len();
        for i in 0..n {
            sim.add_flow(FlowSpec::infinite(
                i as u32,
                built.hosts[i],
                built.hosts[(i + n / 2) % n],
            ));
        }
        let r = sim.run(SimTime::from_us(200));
        assert!(!r.verdict.is_deadlock());
        r.events
    };
    let events = run_once();
    let mut g = c.benchmark_group("fabric");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(events));
    g.bench_function("fat_tree4_permutation_200us", |b| {
        b.iter(|| black_box(run_once()))
    });
    g.finish();
}

fn partitioned_fabric_bench(c: &mut Criterion, samples: usize) {
    // The partitioned engine on the fabric it was built for: a k=8
    // fat-tree (128 hosts, 80 switches) under ToR-local rotation traffic
    // (each host sends to the next host on its own edge switch), so the
    // auto-partitioner's cuts carry pause/route coordination but no
    // steady-state data packets — the intended best case for windowed
    // conservative sync. The serial, 2-partition, and 4-partition
    // variants run the identical scenario; determinism makes their event
    // counts (and full reports) equal, so the three numbers are directly
    // comparable events/sec. On a single-core host the partitioned
    // variants measure pure split/merge overhead, not speedup.
    let built = fat_tree(8, LinkSpec::default());
    let run_once = |parts: usize| {
        let tables = pfcsim_topo::routing::up_down_tables(&built.topo);
        let mut cfg = SimConfig::default();
        cfg.sample_interval = None; // measure datapath, not sampling
        let mut sim = SimBuilder::new(&built.topo)
            .config(cfg)
            .tables(tables)
            .build();
        sim.set_partitions(parts);
        let n = built.hosts.len();
        for i in 0..n {
            // Rotate within each edge switch's 4-host group.
            let dst = (i & !3) + (i + 1) % 4;
            sim.add_flow(FlowSpec::infinite(
                i as u32,
                built.hosts[i],
                built.hosts[dst],
            ));
        }
        let r = sim.run(SimTime::from_us(100));
        assert!(!r.verdict.is_deadlock());
        r.events
    };
    let events = run_once(1);
    let mut g = c.benchmark_group("fabric");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(events));
    g.bench_function("fat_tree8_torlocal_100us", |b| {
        b.iter(|| black_box(run_once(1)))
    });
    for parts in [2usize, 4] {
        assert_eq!(
            run_once(parts),
            events,
            "partitioned run diverged at {parts} partitions"
        );
        g.bench_function(&format!("fat_tree8_torlocal_100us_p{parts}"), |b| {
            b.iter(|| black_box(run_once(parts)))
        });
    }
    g.finish();
}

fn hybrid_fabric_bench(c: &mut Criterion, samples: usize) {
    // The hybrid fluid/packet backend on its intended workload: a k=8
    // fat-tree carrying one bounded intra-rack CBR flow per edge switch
    // (32 flows, each the sole user of its rack), so the classifier's
    // switch-exclusivity test admits every flow and the whole run is
    // closed-form except start/stop edges. The full-packet twin runs the
    // identical scenario with the backend disabled. Both rows report
    // *simulated* events/sec against the same event total (the drained
    // runs satisfy `events + events_elided == full.events`), so the pair
    // is directly comparable: the hybrid speedup is the ratio.
    let built = fat_tree(8, LinkSpec::default());
    let run_once = |hybrid: bool| {
        let tables = pfcsim_topo::routing::up_down_tables(&built.topo);
        let mut cfg = SimConfig::default();
        cfg.sample_interval = None; // occupancy sampling gates hybrid
        cfg.hybrid = Some(pfcsim_net::hybrid::HybridConfig {
            enabled: hybrid,
            ..Default::default()
        });
        let mut sim = SimBuilder::new(&built.topo)
            .config(cfg)
            .tables(tables)
            .build();
        let n = built.hosts.len();
        for e in 0..n / 4 {
            // Hosts 4e..4e+3 share edge switch e; pair the first two.
            sim.add_flow(
                FlowSpec::cbr(
                    e as u32,
                    built.hosts[4 * e],
                    built.hosts[4 * e + 1],
                    pfcsim_simcore::units::BitRate::from_gbps(10 + (e % 16) as u64),
                )
                .stopping_at(SimTime::from_us(900)),
            );
        }
        let r = sim.run(SimTime::from_ms(1));
        assert!(!r.verdict.is_deadlock());
        assert!(r.quiesced, "steady-state run must drain by the horizon");
        r
    };
    let full = run_once(false);
    let hyb = run_once(true);
    assert_eq!(
        hyb.fluid_flows,
        (built.hosts.len() / 4) as u64,
        "every intra-rack pair must classify fluid"
    );
    assert_eq!(
        hyb.events + hyb.events_elided,
        full.events,
        "a drained hybrid run accounts for every elided event"
    );
    let mut g = c.benchmark_group("hybrid");
    g.sample_size(samples);
    // Same element count for both rows: simulated events, not popped
    // events — the hybrid row's wall clock shrinks, not its work done.
    g.throughput(Throughput::Elements(full.events));
    g.bench_function("fat_tree8_steady_1ms", |b| {
        b.iter(|| black_box(run_once(true).events))
    });
    g.bench_function("fat_tree8_steady_1ms_fullpkt", |b| {
        b.iter(|| black_box(run_once(false).events))
    });
    g.finish();
}

fn deadlock_scan_bench(c: &mut Criterion, samples: usize) {
    // The detector's worst realistic case: a 15-to-1 incast on an
    // up/down-routed fat-tree keeps many switch-to-switch channels paused
    // (heavy churn, deep queues) while staying provably deadlock-free, and
    // a 100 ns scan cadence makes the analyzer the first-order cost.
    let built = fat_tree(4, LinkSpec::default());
    let run_once = || {
        let tables = pfcsim_topo::routing::up_down_tables(&built.topo);
        let mut cfg = SimConfig::default();
        cfg.sample_interval = None; // measure the detector, not sampling
        cfg.deadlock_scan_interval = Some(SimDuration::from_ns(100));
        let mut sim = SimBuilder::new(&built.topo)
            .config(cfg)
            .tables(tables)
            .build();
        let n = built.hosts.len();
        for i in 1..n {
            sim.add_flow(FlowSpec::infinite(i as u32, built.hosts[i], built.hosts[0]));
        }
        let r = sim.run(SimTime::from_us(200));
        assert!(!r.verdict.is_deadlock(), "up/down routing is deadlock-free");
        r.events
    };
    let events = run_once();
    let mut g = c.benchmark_group("detector");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(events));
    g.bench_function("deadlock_scan_fat_tree4_incast_200us", |b| {
        b.iter(|| black_box(run_once()))
    });
    g.finish();
}

fn arena_reuse_bench(c: &mut Criterion, samples: usize) {
    // A miniature sweep: the same Fig. 4 scenario built and run 8 times
    // against one leased `SimArenas`. After the first lap every lap
    // should reuse capacity instead of allocating, which is the state
    // `sweep::parallel_map_with` workers live in.
    const RUNS: u64 = 8;
    let horizon = SimTime::from_us(200);
    let lap = |arenas: &mut SimArenas| {
        let sc = crate::scenarios::square_scenario_in(
            crate::scenarios::paper_config(),
            true,
            None,
            arenas,
        );
        sc.run_in(horizon, arenas).events
    };
    let events = lap(&mut SimArenas::new()) * RUNS;
    let mut g = c.benchmark_group("sweep");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(events));
    g.bench_function("square_arena_reuse_8", |b| {
        b.iter(|| {
            let mut arenas = SimArenas::new();
            let mut total = 0u64;
            for _ in 0..RUNS {
                total = total.wrapping_add(lap(&mut arenas));
            }
            black_box(total)
        })
    });
    g.finish();
}

fn serve_bench(c: &mut Criterion, samples: usize) {
    use pfcsim_net::serve::{RoutePush, Session, SessionSpec, Update};

    // A resident sentinel on the golden fat-tree: a neighbour
    // permutation at 5 Gbps per host, advanced 50 µs so queues carry
    // realistic state, answering a controller's pre-commit traffic.
    let built = fat_tree(4, LinkSpec::default());
    let open_session = || {
        let n = built.hosts.len();
        let flows = (0..n)
            .map(|i| {
                FlowSpec::cbr(
                    i as u32,
                    built.hosts[i],
                    built.hosts[(i + 1) % n],
                    pfcsim_simcore::units::BitRate::from_gbps(5),
                )
            })
            .collect();
        let mut spec = SessionSpec::new(built.topo.clone(), flows);
        spec.horizon = SimTime::from_us(1_000_000);
        let mut session = Session::open(spec).expect("serve bench session");
        session
            .apply(Update::AdvanceTo(SimTime::from_us(50)))
            .expect("warm-up advance");
        session
    };
    let push_for = |session: &Session| {
        let node = *built.switches.last().expect("fat-tree has switches");
        let dst = built.hosts[0];
        let ports = session.tables().next_hops(node, dst).to_vec();
        assert!(!ports.is_empty(), "core switch routes host 0");
        RoutePush { node, dst, ports }
    };

    const QUERIES: u64 = 8;
    let mut g = c.benchmark_group("serve");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(QUERIES));
    g.bench_function("what_if_fat_tree4_window100us", |b| {
        let mut session = open_session();
        let push = push_for(&session);
        let window = SimDuration::from_us(100);
        b.iter(|| {
            for _ in 0..QUERIES {
                let doc = session
                    .what_if(std::slice::from_ref(&push), window)
                    .expect("what_if");
                assert!(doc.resident_unchanged);
                black_box(doc);
            }
        })
    });
    g.finish();

    const UPDATES: u64 = 64;
    let mut g = c.benchmark_group("serve");
    g.sample_size(samples);
    g.throughput(Throughput::Elements(UPDATES));
    g.bench_function("route_update_fat_tree4", |b| {
        let mut session = open_session();
        let push = push_for(&session);
        b.iter(|| {
            for _ in 0..UPDATES {
                black_box(
                    session
                        .apply(Update::RouteUpdate(push.clone()))
                        .expect("commit"),
                );
            }
        })
    });
    g.finish();
}

/// `cargo bench` entry point: scheduler micro-benchmarks (both backends).
pub fn bench_event_queue(c: &mut Criterion) {
    event_queue_bench(c, 3);
}

/// `cargo bench` entry point: line datapath.
pub fn bench_line_forwarding(c: &mut Criterion) {
    line_forwarding_bench(c, 10);
}

/// `cargo bench` entry point: instrumentation-off overhead guard.
pub fn bench_telemetry_off(c: &mut Criterion) {
    telemetry_off_bench(c, 10);
}

/// `cargo bench` entry point: fat-tree fabric.
pub fn bench_fat_tree_all_to_all(c: &mut Criterion) {
    fat_tree_bench(c, 10);
}

/// `cargo bench` entry point: partitioned fat-tree fabric.
pub fn bench_partitioned_fabric(c: &mut Criterion) {
    partitioned_fabric_bench(c, 10);
}

/// `cargo bench` entry point: hybrid fluid/packet backend vs its
/// full-packet twin.
pub fn bench_hybrid_fabric(c: &mut Criterion) {
    hybrid_fabric_bench(c, 10);
}

/// `cargo bench` entry point: deadlock detector under pause churn.
pub fn bench_deadlock_scan(c: &mut Criterion) {
    deadlock_scan_bench(c, 10);
}

/// `cargo bench` entry point: arena-reuse sweep lap.
pub fn bench_arena_reuse(c: &mut Criterion) {
    arena_reuse_bench(c, 10);
}

/// `cargo bench` entry point: resident serve-session latency.
pub fn bench_serve(c: &mut Criterion) {
    serve_bench(c, 10);
}

/// Run all engine benchmarks and return the recorded measurements
/// (drains the criterion stub's registry first, so only this run's
/// numbers are returned).
pub fn run_engine_benches(quick: bool) -> Vec<BenchResult> {
    let _ = take_results();
    // Median-of-N with an untimed warm-up (see the criterion stub): odd
    // sample counts make the median a single real measurement, and even
    // the quick tier takes enough samples for a defensible stddev.
    let (s_small, s_big) = if quick { (3, 5) } else { (7, 15) };
    let mut c = Criterion::default();
    event_queue_bench(&mut c, s_big);
    line_forwarding_bench(&mut c, s_small.max(3));
    telemetry_off_bench(&mut c, s_small.max(3));
    fat_tree_bench(&mut c, s_small);
    partitioned_fabric_bench(&mut c, s_small);
    hybrid_fabric_bench(&mut c, s_small);
    deadlock_scan_bench(&mut c, s_small);
    arena_reuse_bench(&mut c, s_small);
    serve_bench(&mut c, s_small);
    take_results()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_benches_record_all_workloads() {
        let results = run_engine_benches(true);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "event_queue/wheel_schedule_pop_10k",
                "event_queue/wheel_pause_timer_churn_10k",
                "event_queue/heap_schedule_pop_10k",
                "event_queue/heap_pause_timer_churn_10k",
                "datapath/line2_saturated_1ms",
                "telemetry/line2_off_1ms",
                "fabric/fat_tree4_permutation_200us",
                "fabric/fat_tree8_torlocal_100us",
                "fabric/fat_tree8_torlocal_100us_p2",
                "fabric/fat_tree8_torlocal_100us_p4",
                "hybrid/fat_tree8_steady_1ms",
                "hybrid/fat_tree8_steady_1ms_fullpkt",
                "detector/deadlock_scan_fat_tree4_incast_200us",
                "sweep/square_arena_reuse_8",
                "serve/what_if_fat_tree4_window100us",
                "serve/route_update_fat_tree4"
            ]
        );
        for r in &results {
            assert!(r.mean_seconds > 0.0, "{} measured nothing", r.name);
            assert!(
                r.elements_per_sec().unwrap_or(0.0) > 0.0,
                "{} has no throughput",
                r.name
            );
        }
    }
}
