//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all [--quick] [--json DIR]
//! repro fig1|fig2|fig3|fig4|fig5|ttl|tiering|dcqcn|baselines|ablations
//! ```

use std::io::Write;

use pfcsim_experiments::experiments::{
    self, e10_ablations, e11_recovery, e12_fluid, e13_flooding, e14_faults, e1_fig1, e2_fig2,
    e3_fig3, e4_fig4, e5_fig5, e6_ttl, e7_tiering, e8_dcqcn, e9_baselines, Opts,
};
use pfcsim_experiments::Report;
use pfcsim_topo::builders::{
    fat_tree, jellyfish, leaf_spine, mesh2d, ring, torus2d, Built, LinkSpec,
};

/// `repro verify <topology> <routing>` — run the Dally–Seitz check from
/// the command line and print the verdict + cost.
fn verify(topo_name: &str, routing: &str) -> ! {
    use pfcsim_core::freedom::verify_all_pairs;
    use pfcsim_mitigation::routing_restriction::{restriction_cost, up_down_arbitrary};
    use pfcsim_mitigation::turn_model::xy_routing;
    use pfcsim_topo::ids::Priority;
    use pfcsim_topo::routing::{shortest_path_tables, up_down_tables};

    let spec = LinkSpec::default();
    let built: Built = match topo_name {
        "fat-tree4" => fat_tree(4, spec),
        "leaf-spine" => leaf_spine(4, 2, 2, spec),
        "jellyfish" => jellyfish(12, 3, 1, 7, spec),
        "ring6" => ring(6, spec),
        "torus3x3" => torus2d(3, 3, spec),
        "mesh3x4" => mesh2d(3, 4, spec),
        other => {
            eprintln!("unknown topology '{other}' (fat-tree4|leaf-spine|jellyfish|ring6|torus3x3|mesh3x4)");
            std::process::exit(2);
        }
    };
    let tables = match routing {
        "shortest" => shortest_path_tables(&built.topo),
        "updown" => up_down_tables(&built.topo),
        "updown-arbitrary" => up_down_arbitrary(&built.topo, built.switches[0]),
        "xy" => xy_routing(&built.topo),
        other => {
            eprintln!("unknown routing '{other}' (shortest|updown|updown-arbitrary|xy)");
            std::process::exit(2);
        }
    };
    println!(
        "topology: {topo_name} ({} switches, {} hosts, {} links)",
        built.switches.len(),
        built.hosts.len(),
        built.topo.link_count()
    );
    match verify_all_pairs(&built.topo, &tables, Priority::DEFAULT) {
        Ok(()) => println!("verdict: DEADLOCK-FREE for any traffic matrix (BDG acyclic)"),
        Err(v) => println!("verdict: NOT deadlock-free: {v:?}"),
    }
    let cost = restriction_cost(&built.topo, &tables);
    println!(
        "path stretch: mean {:.3}, max {:.2}; unreachable pairs: {}",
        cost.mean_stretch, cost.max_stretch, cost.unreachable_pairs
    );
    std::process::exit(0);
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <all|fig1|fig2|fig3|fig4|fig5|ttl|tiering|dcqcn|baselines|ablations|recovery|fluid|flooding|faults|verify> \
         [--quick] [--json DIR] [--csv DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].as_str();
    if cmd == "verify" {
        let topo = args.get(1).map(String::as_str).unwrap_or("fat-tree4");
        let routing = args.get(2).map(String::as_str).unwrap_or("updown");
        verify(topo, routing);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let opts = Opts {
        quick,
        dump_dir: csv_dir,
    };

    let reports: Vec<Report> = match cmd {
        "all" => experiments::run_all(&opts),
        "fig1" => vec![e1_fig1::run(&opts)],
        "fig2" | "eq3" | "table1" => vec![e2_fig2::run(&opts)],
        "fig3" => vec![e3_fig3::run(&opts)],
        "fig4" => vec![e4_fig4::run(&opts)],
        "fig5" => vec![e5_fig5::run(&opts)],
        "ttl" | "ttl-classes" => vec![e6_ttl::run(&opts)],
        "tiering" => vec![e7_tiering::run(&opts)],
        "dcqcn" => vec![e8_dcqcn::run(&opts)],
        "baselines" => vec![e9_baselines::run(&opts)],
        "ablations" => vec![e10_ablations::run(&opts)],
        "recovery" => vec![e11_recovery::run(&opts)],
        "fluid" => vec![e12_fluid::run(&opts)],
        "flooding" | "guo" => vec![e13_flooding::run(&opts)],
        "faults" => vec![e14_faults::run(&opts)],
        _ => usage(),
    };

    for r in &reports {
        println!("{}", r.render());
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output dir");
        for r in &reports {
            let slug: String =
                r.id.chars()
                    .take_while(|c| !c.is_whitespace())
                    .flat_map(char::to_lowercase)
                    .collect();
            let path = format!("{dir}/{slug}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(
                serde_json::to_string_pretty(&r.to_json())
                    .expect("json")
                    .as_bytes(),
            )
            .expect("write json");
            eprintln!("wrote {path}");
        }
    }
}
