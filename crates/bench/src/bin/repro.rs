//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all [--quick] [--json DIR]
//! repro fig1|fig2|fig3|fig4|fig5|ttl|tiering|dcqcn|baselines|ablations
//! repro bench [--quick] [--out PATH]   # engine baselines -> BENCH_engine.json
//! repro metrics [--quick] [--out PATH] # sampled telemetry -> pfcsim-metrics/1 JSON
//! repro trace [--quick] [--out PATH]   # per-packet trace  -> pfcsim-trace/1 JSONL
//! repro golden [--sched wheel|heap] [--checkpoint PATH [--pause-at-us N | --checkpoint-every-us N]]
//!                                      # golden run; optional crash-safe checkpoints (SIGTERM-aware)
//! repro resume PATH                    # continue a checkpointed run to completion
//! repro chaos                          # self-test: injected panics, hangs, corrupt checkpoints
//! ```

use std::io::Write;

use pfcsim_experiments::experiments::{
    self, e10_ablations, e11_recovery, e12_fluid, e13_flooding, e14_faults, e1_fig1, e2_fig2,
    e3_fig3, e4_fig4, e5_fig5, e6_ttl, e7_tiering, e8_dcqcn, e9_baselines, Opts,
};
use pfcsim_experiments::Report;
use pfcsim_topo::builders::{
    fat_tree, jellyfish, leaf_spine, mesh2d, ring, torus2d, Built, LinkSpec,
};

/// `repro verify <topology> <routing>` — run the Dally–Seitz check from
/// the command line and print the verdict + cost.
fn verify(topo_name: &str, routing: &str) -> ! {
    use pfcsim_core::freedom::verify_all_pairs;
    use pfcsim_mitigation::routing_restriction::{restriction_cost, up_down_arbitrary};
    use pfcsim_mitigation::turn_model::xy_routing;
    use pfcsim_topo::ids::Priority;
    use pfcsim_topo::routing::{shortest_path_tables, up_down_tables};

    let spec = LinkSpec::default();
    let built: Built = match topo_name {
        "fat-tree4" => fat_tree(4, spec),
        "leaf-spine" => leaf_spine(4, 2, 2, spec),
        "jellyfish" => jellyfish(12, 3, 1, 7, spec),
        "ring6" => ring(6, spec),
        "torus3x3" => torus2d(3, 3, spec),
        "mesh3x4" => mesh2d(3, 4, spec),
        other => {
            eprintln!("unknown topology '{other}' (fat-tree4|leaf-spine|jellyfish|ring6|torus3x3|mesh3x4)");
            std::process::exit(2);
        }
    };
    let tables = match routing {
        "shortest" => shortest_path_tables(&built.topo),
        "updown" => up_down_tables(&built.topo),
        "updown-arbitrary" => up_down_arbitrary(&built.topo, built.switches[0]),
        "xy" => xy_routing(&built.topo),
        other => {
            eprintln!("unknown routing '{other}' (shortest|updown|updown-arbitrary|xy)");
            std::process::exit(2);
        }
    };
    println!(
        "topology: {topo_name} ({} switches, {} hosts, {} links)",
        built.switches.len(),
        built.hosts.len(),
        built.topo.link_count()
    );
    match verify_all_pairs(&built.topo, &tables, Priority::DEFAULT) {
        Ok(()) => println!("verdict: DEADLOCK-FREE for any traffic matrix (BDG acyclic)"),
        Err(v) => println!("verdict: NOT deadlock-free: {v:?}"),
    }
    let cost = restriction_cost(&built.topo, &tables);
    println!(
        "path stretch: mean {:.3}, max {:.2}; unreachable pairs: {}",
        cost.mean_stretch, cost.max_stretch, cost.unreachable_pairs
    );
    std::process::exit(0);
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <all|fig1|fig2|fig3|fig4|fig5|ttl|tiering|dcqcn|baselines|ablations|recovery|fluid|flooding|faults|verify|bench|metrics|trace|golden|resume|chaos|serve> \
         [--quick] [--json DIR] [--csv DIR] [--out PATH] [--gate] [--partitions N] [--socket PATH] [--checkpoint PATH]"
    );
    std::process::exit(2);
}

/// `--flag VALUE` extraction.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// SIGTERM → checkpoint-and-exit request (Unix). The handler only stores
/// to an atomic; the cadence loop in `repro golden --checkpoint` polls it
/// between slices, writes a final checkpoint, and exits 143.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term_signal {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

/// Print the run's digest against the pinned golden value and exit:
/// 0 on parity, 1 on divergence.
fn finish_golden(report: &pfcsim_net::sim::RunReport) -> ! {
    use pfcsim_net::golden::{digest, GOLDEN_DIGEST};
    let d = digest(report);
    println!(
        "verdict: {}; events: {}; end: {}",
        if report.verdict.is_deadlock() {
            "deadlock"
        } else {
            "no-deadlock"
        },
        report.events,
        report.end_time,
    );
    println!("golden digest: {d:#018x} (expected {GOLDEN_DIGEST:#018x})");
    if d == GOLDEN_DIGEST {
        println!("digest parity: OK");
        std::process::exit(0);
    }
    eprintln!("error: golden digest mismatch — the run's observable behaviour diverged");
    std::process::exit(1);
}

/// `repro golden` — run the fault-laden golden scenario, optionally
/// writing crash-safe checkpoints.
///
/// * `--checkpoint PATH --pause-at-us N`: advance to the pause point,
///   write one checkpoint, and exit 0 with the run unfinished (continue
///   with `repro resume PATH`). This is the CI digest-parity smoke.
/// * `--checkpoint PATH [--checkpoint-every-us N]`: run to completion in
///   slices (default 500 µs of simulated time), overwriting PATH after
///   each slice. On SIGTERM the current slice finishes, a final
///   checkpoint is written, and the process exits 143.
fn golden_cmd(args: &[String]) -> ! {
    use pfcsim_net::config::SchedulerBackend;
    use pfcsim_net::golden::{self, DRAIN_UNTIL, STOP_AT};
    use pfcsim_net::sim::SimArenas;
    use pfcsim_simcore::time::{SimDuration, SimTime};

    let sched = match flag_value(args, "--sched") {
        None => None,
        Some("wheel") => Some(SchedulerBackend::Wheel),
        Some("heap") => Some(SchedulerBackend::Heap),
        Some(other) => {
            eprintln!("unknown scheduler '{other}' (wheel|heap)");
            std::process::exit(2);
        }
    };
    let parse_us = |name: &str| -> Option<u64> {
        flag_value(args, name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} wants a microsecond count, got '{v}'");
                std::process::exit(2);
            })
        })
    };
    let ckpt_path = flag_value(args, "--checkpoint");
    let pause_us = parse_us("--pause-at-us");
    let every_us = parse_us("--checkpoint-every-us");

    let mut arenas = SimArenas::new();
    let Some(path) = ckpt_path else {
        let report = golden::run_with(sched, &mut arenas);
        finish_golden(&report);
    };
    let save = |sim: &mut pfcsim_net::sim::NetSim, path: &str| match sim
        .checkpoint()
        .and_then(|c| c.save(path).map(|()| c.sim_time()))
    {
        Ok(t) => println!("checkpoint written: {path} (t={t})"),
        Err(e) => {
            eprintln!("error: cannot checkpoint: {e}");
            std::process::exit(1);
        }
    };

    term_signal::install();
    let mut sim = golden::build_sim(sched, &mut arenas);
    sim.schedule_flow_stops(STOP_AT);
    let report = if let Some(us) = pause_us {
        // One-shot: pause, checkpoint, leave the run unfinished.
        let pause = SimTime::from_us(us).min(DRAIN_UNTIL);
        match sim.advance_until(pause, DRAIN_UNTIL) {
            None => {
                save(&mut sim, path);
                println!(
                    "paused at {pause} with work remaining; continue with: repro resume {path}"
                );
                std::process::exit(0);
            }
            Some(report) => report, // ended before the pause point
        }
    } else {
        // Cadence mode: checkpoint after every slice, honour SIGTERM
        // between slices.
        let every = SimDuration::from_us(every_us.unwrap_or(500).max(1));
        loop {
            let next = (sim.now() + every).min(DRAIN_UNTIL);
            match sim.advance_until(next, DRAIN_UNTIL) {
                None => {
                    save(&mut sim, path);
                    if term_signal::requested() {
                        eprintln!(
                            "SIGTERM: final checkpoint at {path}; continue with: repro resume {path}"
                        );
                        std::process::exit(143);
                    }
                }
                Some(report) => break report,
            }
        }
    };
    finish_golden(&report)
}

/// `repro resume PATH` — load a checkpoint, continue the run to its
/// horizon, and report. Corrupt or mismatched checkpoints exit 1 with a
/// typed error. When the checkpoint belongs to the golden scenario, the
/// final digest is verified against the pinned golden value.
fn resume_cmd(path: &str) -> ! {
    use pfcsim_net::checkpoint::{config_digest, Checkpoint};
    use pfcsim_net::config::SchedulerBackend;
    use pfcsim_net::golden::{self, digest};
    use pfcsim_net::sim::{NetSim, SimArenas};

    let ckpt = match Checkpoint::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot resume from {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "checkpoint: t={}, seed={}, config digest {:#018x}",
        ckpt.sim_time(),
        ckpt.seed(),
        ckpt.config_digest(),
    );
    // Is this one of the golden scenario's configurations (any scheduler
    // pinning)? If so the resumed digest is verifiable.
    let is_golden = [
        None,
        Some(SchedulerBackend::Wheel),
        Some(SchedulerBackend::Heap),
    ]
    .iter()
    .any(|&s| {
        config_digest(golden::build_sim(s, &mut SimArenas::new()).config()) == ckpt.config_digest()
    });
    let mut sim = match NetSim::resume(ckpt) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot resume from {path}: {e}");
            std::process::exit(1);
        }
    };
    let report = sim.resume_run();
    if is_golden {
        finish_golden(&report);
    }
    println!(
        "resumed to {}; events: {}; digest {:#018x}",
        report.end_time,
        report.events,
        digest(&report)
    );
    std::process::exit(0);
}

/// `repro chaos` — the supervised harness's self-test. Injects the
/// failure modes the robustness layer exists for — worker panics, hung
/// workers, truncated / bit-flipped / config-mismatched checkpoint
/// files — and verifies each one surfaces as a typed, salvageable error:
/// never a process abort, never a silently-wrong resume.
///
/// Exit code 1 means every injection was handled as designed (non-zero
/// because failures *were* injected and salvaged — a supervised sweep
/// with failed points must not report success). Exit code 2 means the
/// harness itself mishandled an injection.
fn chaos() -> ! {
    use pfcsim_experiments::supervise::{supervised_map, FailureKind, SupervisorConfig};
    use pfcsim_net::checkpoint::{Checkpoint, CheckpointError};
    use pfcsim_net::golden::{self, DRAIN_UNTIL, GOLDEN_DIGEST, STOP_AT};
    use pfcsim_net::sim::{NetSim, SimArenas};
    use pfcsim_simcore::time::SimTime;
    use std::time::Duration;

    // Injected panics are expected; keep their default-hook backtraces
    // out of the self-test transcript.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("chaos:"));
        if !expected {
            default_hook(info);
        }
    }));

    let mut mishandled = 0u32;
    let mut check = |name: &str, ok: bool, detail: &str| {
        println!("  [{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            mishandled += 1;
        }
    };
    // Deterministic stand-in for a sweep point's simulation work.
    fn busywork(x: u64) -> u64 {
        let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for _ in 0..1000 {
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        h
    }

    println!("chaos self-test: supervised sweep");
    // 1. A poisoned point panics on every attempt: nine of ten results
    //    must be salvaged alongside one typed failure record.
    let cfg = SupervisorConfig {
        max_attempts: 2,
        backoff: Duration::from_millis(5),
        task_timeout: None,
    };
    let out = supervised_map((0..10u64).collect(), &cfg, |&x| {
        if x == 7 {
            panic!("chaos: injected panic at point {x}");
        }
        busywork(x)
    });
    let salvage_ok = out.completed() == 9
        && out.failures.len() == 1
        && out.failures[0].index == 7
        && out.failures[0].attempts == 2
        && matches!(&out.failures[0].kind, FailureKind::Panicked(m) if m.contains("injected panic"));
    let detail = format!(
        "salvaged {}/10 points; failure record: {}",
        out.completed(),
        out.failures
            .first()
            .map(ToString::to_string)
            .unwrap_or_else(|| "<missing>".into()),
    );
    check("worker panic", salvage_ok, &detail);

    // 2. A hung worker: the watchdog must time the task out and abandon
    //    the thread instead of stalling the sweep.
    let cfg = SupervisorConfig {
        max_attempts: 1,
        backoff: Duration::from_millis(5),
        task_timeout: Some(Duration::from_millis(150)),
    };
    let out = supervised_map((0..6u64).collect(), &cfg, |&x| {
        if x == 3 {
            std::thread::sleep(Duration::from_secs(600)); // "hung" worker
        }
        busywork(x)
    });
    let hang_ok = out.completed() == 5
        && out.failures.len() == 1
        && out.failures[0].index == 3
        && matches!(out.failures[0].kind, FailureKind::TimedOut(_));
    let detail = format!(
        "salvaged {}/6 points; failure record: {}",
        out.completed(),
        out.failures
            .first()
            .map(ToString::to_string)
            .unwrap_or_else(|| "<missing>".into()),
    );
    check("hung worker", hang_ok, &detail);

    println!("chaos self-test: checkpoint integrity");
    let base = std::env::temp_dir().join(format!("pfcsim-chaos-{}.ckpt", std::process::id()));
    let mut arenas = SimArenas::new();
    let mut sim = golden::build_sim(None, &mut arenas);
    sim.schedule_flow_stops(STOP_AT);
    assert!(
        sim.advance_until(SimTime::from_ms(1), DRAIN_UNTIL)
            .is_none(),
        "golden run must pause mid-flight"
    );
    let ckpt = sim.checkpoint().expect("golden run is checkpointable");
    ckpt.save(&base).expect("write chaos checkpoint");
    let pristine = std::fs::read(&base).expect("read back");

    // 3. Truncated file (a crash mid-write of a non-atomic copy).
    let r = Checkpoint::from_bytes(&pristine[..pristine.len() / 3]);
    let detail = match &r {
        Err(e) => format!("rejected: {e}"),
        Ok(_) => "ACCEPTED truncated bytes".into(),
    };
    check("truncated checkpoint", r.is_err(), &detail);

    // 4. A flipped bit in the payload must fail the checksum.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let r = Checkpoint::from_bytes(&flipped);
    let detail = match &r {
        Err(e) => format!("rejected: {e}"),
        Ok(_) => "ACCEPTED corrupted bytes".into(),
    };
    check(
        "bit-flipped checkpoint",
        matches!(r, Err(CheckpointError::Corrupt(_))),
        &detail,
    );

    // 5. A checkpoint must refuse to resume against a different live
    //    config, naming both digests.
    let mut other_cfg = sim.config().clone();
    other_cfg.seed ^= 1;
    let r = ckpt.verify_config(&other_cfg);
    let detail = match &r {
        Err(e) => format!("rejected: {e}"),
        Ok(()) => "ACCEPTED mismatched config".into(),
    };
    check(
        "config-digest mismatch",
        matches!(r, Err(CheckpointError::ConfigDigestMismatch { .. })),
        &detail,
    );

    // 6. Positive control: the pristine file must load, resume, and land
    //    on the exact golden digest — corruption detection would be
    //    worthless if the intact path were broken too.
    let resumed = Checkpoint::load(&base)
        .map_err(|e| e.to_string())
        .and_then(|c| NetSim::resume(c).map_err(|e| e.to_string()))
        .map(|mut s| golden::digest(&s.resume_run()));
    let detail = match &resumed {
        Ok(d) => format!("resumed digest {d:#018x} (golden {GOLDEN_DIGEST:#018x})"),
        Err(e) => format!("resume failed: {e}"),
    };
    check(
        "pristine resume parity",
        resumed == Ok(GOLDEN_DIGEST),
        &detail,
    );
    std::fs::remove_file(&base).ok();

    println!();
    if mishandled == 0 {
        println!(
            "chaos self-test: all injections handled; exiting non-zero because \
             failures were (by design) injected and salvaged"
        );
        std::process::exit(1);
    }
    eprintln!("chaos self-test: {mishandled} injection(s) MISHANDLED");
    std::process::exit(2);
}

/// `repro metrics [--quick] --out PATH` — run the canonical instrumented
/// scenario, write the versioned `pfcsim-metrics/1` document, then read
/// the file back and render the tables from the *parsed* JSON.
fn metrics(quick: bool, out: &str) -> ! {
    use pfcsim_experiments::telemetrydoc;
    use pfcsim_net::telemetry::TelemetryConfig;

    let run = telemetrydoc::instrumented_square(quick, TelemetryConfig::on());
    let telemetry = run.telemetry.expect("telemetry was enabled");
    let doc = telemetrydoc::metrics_doc(quick, &telemetry);
    std::fs::write(
        out,
        serde_json::to_string_pretty(&doc).expect("json") + "\n",
    )
    .expect("write metrics document");

    // Render strictly from the round-tripped file, never the live report.
    let text = std::fs::read_to_string(out).expect("read metrics document back");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("parse metrics document");
    match telemetrydoc::metrics_report_from_json(&parsed) {
        Ok(report) => println!("{}", report.render()),
        Err(e) => {
            eprintln!("error: written metrics document does not validate: {e}");
            std::process::exit(1);
        }
    }
    println!("wrote {out}");
    std::process::exit(0);
}

/// `repro trace [--quick] --out PATH` — stream the canonical scenario's
/// per-packet trace as JSON Lines, parse the file back, and summarize.
fn trace(quick: bool, out: &str) -> ! {
    use pfcsim_experiments::telemetrydoc;
    use pfcsim_net::telemetry::{parse_jsonl_trace, TelemetryConfig, TraceSinkKind};

    let mut telem = TelemetryConfig::on();
    telem.sink = TraceSinkKind::Jsonl {
        path: out.to_string(),
    };
    let run = telemetrydoc::instrumented_square(quick, telem);
    let telemetry = run.telemetry.expect("telemetry was enabled");

    let text = std::fs::read_to_string(out).expect("read trace stream back");
    let events = match parse_jsonl_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: written trace stream does not parse: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{}",
        telemetrydoc::trace_report(out, &events, telemetry.trace_recorded).render()
    );
    println!("wrote {out}");
    std::process::exit(0);
}

/// `repro bench [--quick] [--out PATH] [--gate]` — run the engine
/// micro-benchmarks plus a wall-clock measurement of `repro all --quick`,
/// and write the machine-readable baseline (default `BENCH_engine.json`).
///
/// With `--gate`, also compare each workload's events/sec against the
/// committed baseline and exit non-zero if any regresses by more than
/// [`GATE_REGRESSION_PCT`] percent. Workloads absent from the baseline
/// are reported as new and do not gate.
fn bench(quick: bool, out: &str, gate: bool) -> ! {
    use pfcsim_experiments::enginebench::run_engine_benches;
    use pfcsim_simcore::event::Backend;
    use serde_json::{to_value, Value};

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
    fn val<T: serde::Serialize>(x: T) -> Value {
        to_value(x).expect("to_value")
    }

    // The previously committed baseline, if one exists, for per-workload
    // deltas. When writing somewhere other than the tracked baseline
    // (`--out /tmp/x.json`), deltas still compare against the committed
    // file. Schema 2 predates the scheduler split, so `event_queue/
    // wheel_*` and `heap_*` fall back to the unsplit workload name;
    // anything still unmatched is reported as new rather than an error.
    let baseline: Option<Value> = std::fs::read_to_string(out)
        .or_else(|_| std::fs::read_to_string("BENCH_engine.json"))
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let baseline_field = |name: &str, field: &str| -> Option<f64> {
        let benches = baseline.as_ref()?.get("benches")?.as_array()?;
        let lookup = |n: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(Value::as_str) == Some(n))
                .and_then(|b| b.get(field))
                .and_then(Value::as_f64)
        };
        lookup(name).or_else(|| {
            let rest = name
                .strip_prefix("event_queue/wheel_")
                .or_else(|| name.strip_prefix("event_queue/heap_"))?;
            lookup(&format!("event_queue/{rest}"))
        })
    };
    let baseline_mean = |name: &str| baseline_field(name, "mean_seconds");

    // Which event-queue backend the macro workloads ran under: the
    // per-backend micro-benchmarks pin their own, everything else uses
    // the ambient default (PFCSIM_SCHED or the wheel).
    let default_backend = Backend::from_env().unwrap_or(Backend::Wheel);
    let scheduler_of = |name: &str| -> &'static str {
        if name.starts_with("event_queue/heap_") {
            Backend::Heap.name()
        } else if name.starts_with("event_queue/wheel_") {
            Backend::Wheel.name()
        } else {
            default_backend.name()
        }
    };

    let results = run_engine_benches(quick);
    println!(
        "engine benchmarks (scheduler default: {}):",
        default_backend.name()
    );
    // Workloads whose throughput regressed past the gate threshold, as
    // (name, current events/sec, baseline events/sec, allowed fraction).
    let mut regressions: Vec<(String, f64, f64, f64)> = Vec::new();
    for r in &results {
        let delta = match baseline_mean(&r.name) {
            Some(b) if b > 0.0 => {
                format!("{:+.1}% vs baseline", (r.mean_seconds / b - 1.0) * 100.0)
            }
            _ => "no baseline (new workload)".to_string(),
        };
        println!(
            "  {:<48} {:>9.3} ms/iter  [{}]  {}",
            r.name,
            r.mean_seconds * 1e3,
            scheduler_of(&r.name),
            delta
        );
        if gate {
            if let (Some(base_eps), Some(eps)) = (
                baseline_field(&r.name, "events_per_sec"),
                r.elements_per_sec(),
            ) {
                let allowed = gate_allowance(
                    baseline_field(&r.name, "stddev_seconds"),
                    baseline_field(&r.name, "mean_seconds"),
                );
                if base_eps > 0.0 && eps < base_eps * (1.0 - allowed) {
                    regressions.push((r.name.clone(), eps, base_eps, allowed));
                }
            }
        }
    }

    // Wall-clock the full quick regeneration in-process, serial and at
    // the ambient thread count; the reports must match byte-for-byte
    // (the determinism contract of `sweep::parallel_map`). On a
    // single-core host a "parallel" pass would time the same serial
    // execution plus scheduling noise and report a meaningless speedup,
    // so the comparison is skipped there — the determinism gate still
    // runs, comparing two serial passes instead.
    let opts = Opts {
        quick: true,
        dump_dir: None,
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = host_cpus;
    let t0 = std::time::Instant::now();
    let serial = with_threads(1, || experiments::run_all(&opts));
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let parallel = with_threads(threads, || experiments::run_all(&opts));
    let parallel_secs = t1.elapsed().as_secs_f64();
    let serial_render: Vec<String> = serial.iter().map(Report::render).collect();
    let parallel_render: Vec<String> = parallel.iter().map(Report::render).collect();
    let deterministic = serial_render == parallel_render;
    let multicore = host_cpus > 1;

    let benches: Vec<Value> = results
        .iter()
        .map(|r| {
            obj(vec![
                ("name", val(&r.name)),
                ("scheduler", val(scheduler_of(&r.name))),
                ("mean_seconds", val(r.mean_seconds)),
                ("stddev_seconds", val(r.stddev_seconds)),
                ("iters", val(r.iters as u64)),
                ("events_per_sec", val(r.elements_per_sec())),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("schema", val("pfcsim-bench/4")),
        ("quick", val(quick)),
        ("scheduler_default", val(default_backend.name())),
        ("threads", val(threads as u64)),
        ("host_cpus", val(host_cpus as u64)),
        ("benches", Value::Array(benches)),
        (
            "repro_all_quick",
            obj(vec![
                ("serial_seconds", val(serial_secs)),
                ("parallel_seconds", val(parallel_secs)),
                (
                    "speedup",
                    if multicore {
                        val(serial_secs / parallel_secs.max(1e-9))
                    } else {
                        Value::Null
                    },
                ),
                (
                    "speedup_note",
                    if multicore {
                        Value::Null
                    } else {
                        val("single-core host: serial-vs-parallel comparison not meaningful")
                    },
                ),
                ("deterministic", val(deterministic)),
            ]),
        ),
    ]);
    std::fs::write(
        out,
        serde_json::to_string_pretty(&doc).expect("json") + "\n",
    )
    .expect("write bench baseline");
    if multicore {
        println!(
            "repro all --quick: serial {serial_secs:.3}s, parallel({threads}) {parallel_secs:.3}s, \
             deterministic: {deterministic}"
        );
    } else {
        println!(
            "repro all --quick: serial {serial_secs:.3}s, deterministic: {deterministic} \
             (single-core host: speedup comparison skipped)"
        );
    }
    println!("wrote {out}");
    if !deterministic {
        eprintln!("error: serial and parallel reports diverge — sweep determinism is broken");
        std::process::exit(1);
    }
    if gate {
        if baseline.is_none() {
            eprintln!(
                "error: --gate requested but no baseline could be read \
                 ({out} or BENCH_engine.json)"
            );
            std::process::exit(1);
        }
        if regressions.is_empty() {
            println!(
                "perf gate: PASS (no workload regressed past its noise-adjusted threshold; \
                 base {GATE_REGRESSION_PCT:.0}% + 2x the baseline's recorded stddev/mean)"
            );
        } else {
            eprintln!(
                "perf gate: FAIL — {} workload(s) regressed past the noise-adjusted \
                 threshold (base {GATE_REGRESSION_PCT:.0}% + 2x baseline stddev/mean):",
                regressions.len()
            );
            for (name, eps, base, allowed) in &regressions {
                eprintln!(
                    "  {:<48} {:>8.2}M ev/s vs baseline {:>8.2}M ev/s ({:+.1}%, \
                     allowed -{:.1}%)",
                    name,
                    eps / 1e6,
                    base / 1e6,
                    (eps / base - 1.0) * 100.0,
                    allowed * 100.0
                );
            }
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

/// `repro bench --gate` fails when a workload's events/sec drops more than
/// this percentage below the committed baseline. Generous enough to ride
/// out scheduler noise on shared CI runners, tight enough to catch a real
/// hot-path regression (which in this engine is rarely subtle).
const GATE_REGRESSION_PCT: f64 = 15.0;

/// Per-workload gate allowance as a fraction of baseline events/sec: the
/// base [`GATE_REGRESSION_PCT`] widened by twice the baseline's recorded
/// relative noise (`stddev_seconds / mean_seconds`), so a workload the
/// baseline host itself measured as jittery gets proportionally more
/// slack instead of flaking the gate. Capped at 50% — a baseline so
/// noisy that it would permit halving throughput should be re-recorded,
/// not accommodated.
fn gate_allowance(stddev: Option<f64>, mean: Option<f64>) -> f64 {
    let rel = match (stddev, mean) {
        (Some(s), Some(m)) if m > 0.0 && s.is_finite() && s >= 0.0 => s / m,
        _ => 0.0,
    };
    (GATE_REGRESSION_PCT / 100.0 + 2.0 * rel).min(0.5)
}

/// Run `f` with `PFCSIM_THREADS` pinned to `n`, restoring it after.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("PFCSIM_THREADS").ok();
    std::env::set_var("PFCSIM_THREADS", n.to_string());
    let r = f();
    match saved {
        Some(v) => std::env::set_var("PFCSIM_THREADS", v),
        None => std::env::remove_var("PFCSIM_THREADS"),
    }
    r
}

/// `repro serve [--socket PATH] [--checkpoint PATH]` — the resident
/// deadlock-sentinel service: JSONL requests on stdin (or a Unix
/// socket), one JSONL response per request. SIGTERM drains gracefully:
/// a final checkpoint is written (when `--checkpoint` is given and a
/// live session exists) and the process exits 143.
fn serve_cmd(args: &[String]) -> ! {
    use pfcsim_net::serve::{ServeConfig, ServeSession};

    term_signal::install();
    let cfg = ServeConfig {
        checkpoint_path: flag_value(args, "--checkpoint").map(str::to_string),
    };
    let mut serve = ServeSession::new(cfg);
    let code = match flag_value(args, "--socket") {
        Some(path) => serve_socket(path, &mut serve),
        None => serve_stdin(&mut serve),
    };
    if code == 143 {
        match serve.graceful_shutdown() {
            Ok(Some(p)) => eprintln!("serve: SIGTERM — final checkpoint written to {p}"),
            Ok(None) => eprintln!("serve: SIGTERM — nothing to checkpoint"),
            Err(e) => eprintln!("serve: SIGTERM — final checkpoint failed: {e}"),
        }
    }
    std::process::exit(code);
}

/// Stdin serving loop. A blocked `read_line` cannot observe SIGTERM, so
/// a reader thread feeds lines through a channel the main loop polls
/// with a timeout, checking the signal flag between requests.
fn serve_stdin(serve: &mut pfcsim_net::serve::ServeSession) -> i32 {
    use pfcsim_net::serve::Control;
    use std::io::{BufRead, Write};
    use std::sync::mpsc;

    let (tx, rx) = mpsc::channel::<std::io::Result<String>>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    let stdout = std::io::stdout();
    loop {
        match rx.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(Ok(line)) => {
                let (resp, ctl) = serve.handle_line(&line);
                if let Some(resp) = resp {
                    let mut out = stdout.lock();
                    if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
                        return 1;
                    }
                }
                if ctl == Control::Shutdown {
                    return 0;
                }
            }
            // Read error or EOF: the stream is done.
            Ok(Err(_)) | Err(mpsc::RecvTimeoutError::Disconnected) => return 0,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if term_signal::requested() {
                    return 143;
                }
            }
        }
    }
}

/// Unix-socket serving loop: one client at a time, session state
/// persisting across connections; same SIGTERM drain as stdin mode.
#[cfg(unix)]
fn serve_socket(path: &str, serve: &mut pfcsim_net::serve::ServeSession) -> i32 {
    use pfcsim_net::serve::Control;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixListener;
    use std::sync::mpsc;

    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {path}: {e}");
            return 1;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("error: cannot poll {path}: {e}");
        return 1;
    }
    eprintln!("serve: listening on {path}");
    loop {
        if term_signal::requested() {
            return 143;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
            Err(e) => {
                eprintln!("error: accept on {path}: {e}");
                return 1;
            }
        };
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(e) => {
                eprintln!("error: socket clone: {e}");
                continue;
            }
        };
        let reader = BufReader::new(stream);
        let (tx, rx) = mpsc::channel::<std::io::Result<String>>();
        std::thread::spawn(move || {
            for line in reader.lines() {
                if tx.send(line).is_err() {
                    return;
                }
            }
        });
        loop {
            match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                Ok(Ok(line)) => {
                    let (resp, ctl) = serve.handle_line(&line);
                    if let Some(resp) = resp {
                        if writeln!(writer, "{resp}")
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break; // client went away mid-response
                        }
                    }
                    if ctl == Control::Shutdown {
                        return 0;
                    }
                }
                // Client disconnected; go back to accepting.
                Ok(Err(_)) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if term_signal::requested() {
                        return 143;
                    }
                }
            }
        }
    }
}

#[cfg(not(unix))]
fn serve_socket(_path: &str, _serve: &mut pfcsim_net::serve::ServeSession) -> i32 {
    eprintln!("error: --socket requires a Unix platform; use stdin mode");
    2
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].as_str();
    // `--partitions N` pins every simulation this invocation constructs
    // to N-way partitioned execution (the same knob as the
    // PFCSIM_PARTITIONS environment variable, which it overrides). The
    // engine's determinism contract makes the output identical at any
    // N, which is exactly what CI's partition-matrix byte-diff checks.
    if let Some(v) = flag_value(&args, "--partitions") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => std::env::set_var("PFCSIM_PARTITIONS", n.to_string()),
            _ => {
                eprintln!("error: --partitions expects a positive integer, got {v:?}");
                std::process::exit(2);
            }
        }
    }
    if cmd == "verify" {
        let topo = args.get(1).map(String::as_str).unwrap_or("fat-tree4");
        let routing = args.get(2).map(String::as_str).unwrap_or("updown");
        verify(topo, routing);
    }
    if cmd == "golden" {
        golden_cmd(&args[1..]);
    }
    if cmd == "resume" {
        match args.get(1) {
            Some(path) => resume_cmd(path),
            None => {
                eprintln!("usage: repro resume <checkpoint-path>");
                std::process::exit(2);
            }
        }
    }
    if cmd == "chaos" {
        chaos();
    }
    if cmd == "serve" {
        serve_cmd(&args[1..]);
    }
    let quick = args.iter().any(|a| a == "--quick");
    if cmd == "bench" {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_engine.json");
        let gate = args.iter().any(|a| a == "--gate");
        bench(quick, out, gate);
    }
    if cmd == "metrics" || cmd == "trace" {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or(if cmd == "metrics" {
                "metrics.json"
            } else {
                "trace.jsonl"
            });
        if cmd == "metrics" {
            metrics(quick, out);
        } else {
            trace(quick, out);
        }
    }
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let opts = Opts {
        quick,
        dump_dir: csv_dir,
    };

    let reports: Vec<Report> = match cmd {
        "all" => experiments::run_all(&opts),
        "fig1" => vec![e1_fig1::run(&opts)],
        "fig2" | "eq3" | "table1" => vec![e2_fig2::run(&opts)],
        "fig3" => vec![e3_fig3::run(&opts)],
        "fig4" => vec![e4_fig4::run(&opts)],
        "fig5" => vec![e5_fig5::run(&opts)],
        "ttl" | "ttl-classes" => vec![e6_ttl::run(&opts)],
        "tiering" => vec![e7_tiering::run(&opts)],
        "dcqcn" => vec![e8_dcqcn::run(&opts)],
        "baselines" => vec![e9_baselines::run(&opts)],
        "ablations" => vec![e10_ablations::run(&opts)],
        "recovery" => vec![e11_recovery::run(&opts)],
        "fluid" => vec![e12_fluid::run(&opts)],
        "flooding" | "guo" => vec![e13_flooding::run(&opts)],
        "faults" => vec![e14_faults::run(&opts)],
        _ => usage(),
    };

    for r in &reports {
        println!("{}", r.render());
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output dir");
        for r in &reports {
            let slug: String =
                r.id.chars()
                    .take_while(|c| !c.is_whitespace())
                    .flat_map(char::to_lowercase)
                    .collect();
            let path = format!("{dir}/{slug}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(
                serde_json::to_string_pretty(&r.to_json())
                    .expect("json")
                    .as_bytes(),
            )
            .expect("write json");
            eprintln!("wrote {path}");
        }
    }
}
