//! Process-wide compute-thread budget.
//!
//! Two layers of the workspace fan work out onto OS threads: sweep
//! runners parallelize *across* simulations, and the partitioned engine
//! parallelizes *inside* one simulation. Each is independently capped by
//! `PFCSIM_THREADS`, but composed naively they multiply — a 16-thread
//! sweep of 4-partition runs would put 64 runnable threads on a
//! 16-core box. This module is the shared ledger both layers draw from:
//! a caller that wants `n` *extra* worker threads asks [`try_acquire`]
//! and spawns only what it was granted, so the process-wide runnable
//! count never exceeds the budget no matter how the layers nest.
//!
//! The ledger tracks only *extra* threads. Every caller already owns the
//! thread it runs on (the sweep's calling thread doubles as a worker,
//! the partition driver steps a shard itself), so a grant of 0 degrades
//! to inline execution, never to deadlock. Results must not depend on
//! grants — both layers are deterministic at any worker count — so the
//! ledger affects wall-clock only, never output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Extra worker threads currently granted and not yet released.
static IN_USE: AtomicUsize = AtomicUsize::new(0);

/// Total compute-thread budget: `PFCSIM_THREADS` if set and valid,
/// otherwise the machine's available parallelism.
///
/// A *set but invalid* `PFCSIM_THREADS` (`0`, empty, unparsable) yields
/// a budget of **1** with a one-time stderr warning: a malformed
/// override must degrade to the deterministic serial path, never
/// silently fan out. (Same hardening as the sweep runner's historical
/// `worker_count`.)
pub fn budget() -> usize {
    match std::env::var("PFCSIM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: PFCSIM_THREADS={v:?} is not a positive integer; \
                         falling back to 1 worker"
                    );
                });
                1
            }
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Try to reserve up to `want` extra worker threads; returns the number
/// actually granted (possibly 0). Pair every grant with a
/// [`release`] of the same amount.
///
/// The grant is `min(want, budget - 1 - in_use)`: one slot of the
/// budget is permanently accounted to the caller's own thread, so a
/// budget of `N` yields at most `N - 1` extras process-wide.
pub fn try_acquire(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let total = budget().saturating_sub(1);
    let mut used = IN_USE.load(Ordering::Relaxed);
    loop {
        let avail = total.saturating_sub(used);
        let grant = want.min(avail);
        if grant == 0 {
            return 0;
        }
        match IN_USE.compare_exchange_weak(used, used + grant, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return grant,
            Err(actual) => used = actual,
        }
    }
}

/// Return `n` previously granted extra worker threads to the ledger.
pub fn release(n: usize) {
    if n > 0 {
        let prev = IN_USE.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "released more threads than acquired");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acquire/release bookkeeping balances; grants never exceed the
    /// request. (The absolute grant depends on the host's core count and
    /// concurrent tests, so only the invariants are asserted.)
    #[test]
    fn grants_are_bounded_and_balance() {
        assert_eq!(try_acquire(0), 0);
        let got = try_acquire(3);
        assert!(got <= 3);
        // A second acquisition still fits the global budget.
        let more = try_acquire(usize::MAX);
        assert!(got + more < usize::MAX);
        release(more);
        release(got);
    }
}
