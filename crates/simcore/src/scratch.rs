//! Reusable scratch structures for hot-path analyses.
//!
//! Incremental algorithms that run thousands of times per simulated
//! millisecond (the deadlock detector's worklist fixpoint, for example)
//! must not allocate per invocation. The types here are built once at
//! their final size and then cleared *sparsely* — cost proportional to
//! what was touched, not to capacity.

/// A fixed-capacity bitset over dense `usize` indices.
///
/// All operations are O(1) except [`DenseBitSet::iter_ones`], which is
/// O(words). Cleared sparsely by re-clearing the bits that were set, so
/// reuse across invocations costs only the touched bits.
#[derive(Debug, Clone, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// A bitset able to hold indices `0..n`, all clear.
    pub fn new(n: usize) -> Self {
        DenseBitSet {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`. Returns true iff the bit was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & b == 0;
        self.words[w] |= b;
        was
    }

    /// Clear bit `i`. Returns true iff the bit was previously set.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Iterate set bits in ascending index order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Clear every bit (O(words) — prefer sparse clears on hot paths).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_get() {
        let mut s = DenseBitSet::new(130);
        assert!(s.set(0));
        assert!(s.set(129));
        assert!(!s.set(129), "second set reports already-set");
        assert!(s.get(0) && s.get(129) && !s.get(64));
        assert!(s.clear(129));
        assert!(!s.clear(129), "second clear reports already-clear");
        assert!(!s.get(129));
    }

    #[test]
    fn iter_ones_is_ascending() {
        let mut s = DenseBitSet::new(200);
        for &i in &[5usize, 63, 64, 128, 199] {
            s.set(i);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, vec![5, 63, 64, 128, 199]);
        s.clear_all();
        assert_eq!(s.iter_ones().count(), 0);
    }
}
