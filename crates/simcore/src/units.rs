//! Data-size and data-rate units with exact integer conversions.
//!
//! `Bytes` counts payload+header octets; `BitRate` is bits per second.
//! Serialization time is computed with a u128 intermediate so that no
//! realistic (rate, size) pair can overflow or lose precision beyond the
//! final integer division to picoseconds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, PS_PER_SEC};

/// A byte count (buffer occupancies, packet and frame sizes, thresholds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    #[inline]
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }
    /// Construct from kilobytes (1 KB = 1000 B, matching the paper's axes).
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }
    /// Construct from megabytes (1 MB = 10^6 B).
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }
    /// Construct from kibibytes (1 KiB = 1024 B).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
    /// Bit count (×8).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }
    /// Value in (fractional) kilobytes — reporting only.
    #[inline]
    pub fn as_kb_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// True iff zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }
    /// Minimum of two counts.
    #[inline]
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }
    /// Maximum of two counts.
    #[inline]
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("Bytes overflow"))
    }
}
impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}
impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_sub(rhs.0).expect("Bytes underflow"))
    }
}
impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}
impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A data rate in bits per second.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BitRate(u64);

impl BitRate {
    /// Zero rate (used to model a fully blocked limiter).
    pub const ZERO: BitRate = BitRate(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }
    /// Construct from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }
    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        BitRate(gbps * 1_000_000_000)
    }

    /// Raw bits per second.
    #[inline]
    pub const fn bps(self) -> u64 {
        self.0
    }
    /// Value in (fractional) Gbps — reporting only.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// True iff zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Exact serialization time for `size` at this rate, rounded up to the
    /// next picosecond. Rounding up preserves the non-starvation invariant:
    /// a transmitter never finishes a packet earlier than the wire could.
    #[inline]
    pub fn serialization_time(self, size: Bytes) -> SimDuration {
        assert!(self.0 > 0, "serialization over a zero-rate link");
        let bits = size.bits() as u128;
        let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
        SimDuration::from_ps(u64::try_from(ps).expect("serialization time overflows u64 ps"))
    }

    /// Bytes transferable in `d` at this rate (truncating).
    #[inline]
    pub fn bytes_in(self, d: SimDuration) -> Bytes {
        let bits = self.0 as u128 * d.as_ps() as u128 / PS_PER_SEC as u128;
        Bytes::new(u64::try_from(bits / 8).expect("byte count overflows u64"))
    }

    /// Scale the rate by a rational factor `num/den` (for fair-share math).
    #[inline]
    pub fn scale(self, num: u64, den: u64) -> BitRate {
        assert!(den > 0, "zero denominator");
        BitRate(u64::try_from(self.0 as u128 * num as u128 / den as u128).expect("rate overflow"))
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::from_kb(40).get(), 40_000);
        assert_eq!(Bytes::from_mb(12).get(), 12_000_000);
        assert_eq!(Bytes::from_kib(4).get(), 4_096);
        assert_eq!(Bytes::new(9).bits(), 72);
    }

    #[test]
    fn byte_arithmetic_and_saturation() {
        let a = Bytes::new(100);
        let b = Bytes::new(30);
        assert_eq!((a + b).get(), 130);
        assert_eq!((a - b).get(), 70);
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.checked_sub(b), Some(Bytes::new(70)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        let total: Bytes = [a, b, Bytes::new(1)].into_iter().sum();
        assert_eq!(total.get(), 131);
    }

    #[test]
    fn serialization_is_exact_at_dc_rates() {
        // 1 byte @ 40 Gbps = 8 bits / 40e9 bps = 0.2 ns = 200 ps exactly.
        let r40 = BitRate::from_gbps(40);
        assert_eq!(r40.serialization_time(Bytes::new(1)).as_ps(), 200);
        // A 1000-byte packet @ 40 Gbps = 200 ns.
        assert_eq!(r40.serialization_time(Bytes::new(1000)).as_ns(), 200);
        // 64-byte PFC frame @ 100 Gbps = 5.12 ns = 5120 ps.
        let r100 = BitRate::from_gbps(100);
        assert_eq!(r100.serialization_time(Bytes::new(64)).as_ps(), 5_120);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666... s -> rounds up.
        let r = BitRate::from_bps(3);
        let t = r.serialization_time(Bytes::new(1));
        assert_eq!(t.as_ps(), (8 * PS_PER_SEC).div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_serialization() {
        let r = BitRate::from_gbps(40);
        let d = r.serialization_time(Bytes::from_kb(40));
        assert_eq!(r.bytes_in(d), Bytes::from_kb(40));
    }

    #[test]
    fn rate_scaling() {
        let r = BitRate::from_gbps(40);
        assert_eq!(r.scale(1, 2), BitRate::from_gbps(20));
        assert_eq!(r.scale(3, 4), BitRate::from_gbps(30));
        assert_eq!(BitRate::from_bps(5).scale(1, 2), BitRate::from_bps(2));
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", Bytes::from_kb(40)), "40.00KB");
        assert_eq!(format!("{}", Bytes::new(12)), "12B");
        assert_eq!(format!("{}", Bytes::from_mb(12)), "12.00MB");
        assert_eq!(format!("{}", BitRate::from_gbps(40)), "40.00Gbps");
        assert_eq!(format!("{}", BitRate::from_mbps(250)), "250.00Mbps");
        assert_eq!(format!("{}", BitRate::from_bps(12)), "12bps");
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_serialization_panics() {
        let _ = BitRate::ZERO.serialization_time(Bytes::new(1));
    }
}
