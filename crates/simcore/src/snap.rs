//! Versioned binary snapshot framing for crash-safe checkpoints.
//!
//! A checkpoint file is a `pfcsim-checkpoint/1` frame: a magic string, the
//! configuration digest of the run that wrote it, a length-prefixed binary
//! encoding of a [`Value`] tree (the serialized simulator state), and a
//! trailing FNV-1a checksum over everything before it. The encoding is
//! fully deterministic — integers are fixed-width little-endian, floats
//! are written via [`f64::to_bits`] so restore is bit-exact — which is
//! what lets a resumed run reproduce the exact digest of an uninterrupted
//! one.
//!
//! Corruption never panics: truncation, a foreign magic, a flipped bit,
//! or a malformed payload all surface as a typed [`SnapError`].

use serde::value::{Number, Value};

/// Magic prefix of every checkpoint frame (also its format version).
pub const MAGIC: &[u8; 19] = b"pfcsim-checkpoint/1";

/// Why a checkpoint frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the frame (or a value inside it) did.
    Truncated,
    /// The frame does not start with [`MAGIC`] — not a checkpoint, or a
    /// different format version.
    BadMagic,
    /// The trailing FNV-1a checksum does not match the frame contents.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum recomputed over the frame contents.
        computed: u64,
    },
    /// The payload bytes are not a valid value encoding.
    Malformed(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "checkpoint truncated"),
            SnapError::BadMagic => write!(
                f,
                "not a {} frame",
                std::str::from_utf8(MAGIC).expect("magic is ascii")
            ),
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::Malformed(why) => write!(f, "malformed checkpoint payload: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash (the workspace's standard content digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// Value-encoding tag bytes.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_POS_INT: u8 = 3;
const TAG_NEG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STRING: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

/// Append the deterministic binary encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(Number::PosInt(n)) => {
            out.push(TAG_POS_INT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Number(Number::NegInt(n)) => {
            out.push(TAG_NEG_INT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Number(Number::Float(x)) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(pairs) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
            for (k, item) in pairs {
                out.extend_from_slice(&(k.len() as u64).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
                encode_value(item, out);
            }
        }
    }
}

/// FNV-1a digest of `v`'s binary encoding — the workspace's canonical
/// structural digest (used to fingerprint a run's configuration).
pub fn value_digest(v: &Value) -> u64 {
    let mut bytes = Vec::new();
    encode_value(v, &mut bytes);
    fnv1a(&bytes)
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], SnapError> {
    let end = pos.checked_add(n).ok_or(SnapError::Truncated)?;
    if end > buf.len() {
        return Err(SnapError::Truncated);
    }
    let out = &buf[*pos..end];
    *pos = end;
    Ok(out)
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64, SnapError> {
    let bytes = take(buf, pos, 8)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn take_len(buf: &[u8], pos: &mut usize) -> Result<usize, SnapError> {
    let n = take_u64(buf, pos)?;
    // A length can never exceed the bytes remaining (each element costs at
    // least one byte), so an absurd prefix is corruption, not an OOM.
    if n > (buf.len() - *pos) as u64 {
        return Err(SnapError::Truncated);
    }
    Ok(n as usize)
}

fn take_string(buf: &[u8], pos: &mut usize) -> Result<String, SnapError> {
    let n = take_len(buf, pos)?;
    let bytes = take(buf, pos, n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Malformed("non-UTF-8 string".into()))
}

/// Decode one value starting at `pos`, advancing it past the value.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, SnapError> {
    let tag = take(buf, pos, 1)?[0];
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_POS_INT => Ok(Value::Number(Number::PosInt(take_u64(buf, pos)?))),
        TAG_NEG_INT => Ok(Value::Number(Number::NegInt(take_u64(buf, pos)? as i64))),
        TAG_FLOAT => Ok(Value::Number(Number::Float(f64::from_bits(take_u64(
            buf, pos,
        )?)))),
        TAG_STRING => Ok(Value::String(take_string(buf, pos)?)),
        TAG_ARRAY => {
            let n = take_len(buf, pos)?;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(buf, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let n = take_len(buf, pos)?;
            let mut pairs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let key = take_string(buf, pos)?;
                let val = decode_value(buf, pos)?;
                pairs.push((key, val));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(SnapError::Malformed(format!("unknown value tag {other}"))),
    }
}

/// Encode a complete checkpoint frame: magic, `config_digest`, the
/// length-prefixed payload encoding, and a trailing FNV-1a checksum over
/// everything before it.
pub fn encode_frame(config_digest: u64, payload: &Value) -> Vec<u8> {
    let mut body = Vec::new();
    encode_value(payload, &mut body);
    let mut out = Vec::with_capacity(MAGIC.len() + 24 + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&config_digest.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode and fully validate a checkpoint frame, returning the stored
/// config digest and the payload value. Every corruption mode maps to a
/// typed [`SnapError`]; this function never panics on untrusted bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, Value), SnapError> {
    if bytes.len() < MAGIC.len() {
        // Too short to even say what it is — but if what's there doesn't
        // match the magic prefix, "wrong format" is the better diagnosis.
        if MAGIC.starts_with(bytes) {
            return Err(SnapError::Truncated);
        }
        return Err(SnapError::BadMagic);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let mut pos = MAGIC.len();
    let config_digest = take_u64(bytes, &mut pos)?;
    let payload_len = take_u64(bytes, &mut pos)?;
    let expected_total = (pos as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or(SnapError::Truncated)?;
    if (bytes.len() as u64) < expected_total {
        return Err(SnapError::Truncated);
    }
    if bytes.len() as u64 != expected_total {
        return Err(SnapError::Malformed(format!(
            "trailing garbage: frame says {expected_total} bytes, file has {}",
            bytes.len()
        )));
    }
    let checksum_at = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[checksum_at..].try_into().expect("8 bytes"));
    let computed = fnv1a(&bytes[..checksum_at]);
    if stored != computed {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    let payload = decode_value(bytes, &mut pos)?;
    if pos != checksum_at {
        return Err(SnapError::Malformed(
            "payload length disagrees with its encoding".into(),
        ));
    }
    Ok((config_digest, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("n".into(), Value::Number(Number::PosInt(u64::MAX))),
            ("i".into(), Value::Number(Number::NegInt(-42))),
            (
                "f".into(),
                Value::Number(Number::Float(0.1 + 0.2)), // non-representable sum
            ),
            ("s".into(), Value::String("paused ×2".into())),
            ("b".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
            (
                "a".into(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(1)),
                    Value::Object(vec![("k".into(), Value::Bool(false))]),
                ]),
            ),
        ])
    }

    #[test]
    fn value_round_trip_is_exact() {
        let v = sample();
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut pos = 0;
        let back = decode_value(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, v);
    }

    #[test]
    fn float_bits_survive() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let mut bytes = Vec::new();
            encode_value(&Value::Number(Number::Float(x)), &mut bytes);
            let mut pos = 0;
            match decode_value(&bytes, &mut pos).unwrap() {
                Value::Number(Number::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_round_trip() {
        let v = sample();
        let frame = encode_frame(0xDEAD_BEEF, &v);
        let (digest, back) = decode_frame(&frame).unwrap();
        assert_eq!(digest, 0xDEAD_BEEF);
        assert_eq!(back, v);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let frame = encode_frame(7, &sample());
        for len in 0..frame.len() {
            let err = decode_frame(&frame[..len]).unwrap_err();
            assert!(
                matches!(err, SnapError::Truncated | SnapError::BadMagic),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let frame = encode_frame(7, &sample());
        // Flip one bit in every byte position; none may decode cleanly.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_frame(&bad).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn foreign_bytes_are_bad_magic_not_panic() {
        assert_eq!(
            decode_frame(b"not a checkpoint at all"),
            Err(SnapError::BadMagic)
        );
        assert_eq!(decode_frame(b""), Err(SnapError::Truncated));
        assert_eq!(decode_frame(b"pfcsim-chec"), Err(SnapError::Truncated));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut frame = encode_frame(7, &sample());
        frame.extend_from_slice(b"extra");
        assert!(matches!(decode_frame(&frame), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn value_digest_is_stable_and_sensitive() {
        let a = value_digest(&sample());
        assert_eq!(a, value_digest(&sample()));
        let mut other = sample();
        if let Value::Object(pairs) = &mut other {
            pairs[0].1 = Value::Number(Number::PosInt(1));
        }
        assert_ne!(a, value_digest(&other));
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocation() {
        // TAG_ARRAY claiming u64::MAX elements.
        let mut bytes = vec![TAG_ARRAY];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut pos = 0;
        assert_eq!(decode_value(&bytes, &mut pos), Err(SnapError::Truncated));
    }
}
