//! Measurement recorders: time series, event logs, interval logs,
//! histograms and throughput meters.
//!
//! These are what the experiment harness uses to regenerate the paper's
//! plots: Fig. 3(c)/4(c)/5(b) are [`EventLog`]s of PAUSE emissions per link,
//! Fig. 3(d–g)/5(c–d) are [`TimeSeries`] of ingress-buffer occupancy.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::units::Bytes;

/// A `(time, value)` sample stream with u64 values (bytes, counts, …).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(SimTime, u64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample; times must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: u64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(t >= last, "samples must be pushed in time order");
        }
        self.samples.push((t, v));
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[(SimTime, u64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest recorded value (0 for an empty series).
    pub fn max(&self) -> u64 {
        self.samples.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Smallest recorded value (0 for an empty series).
    pub fn min(&self) -> u64 {
        self.samples.iter().map(|&(_, v)| v).min().unwrap_or(0)
    }

    /// Arithmetic mean of values (0.0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Samples within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.samples
            .iter()
            .copied()
            .filter(move |&(t, _)| t >= from && t < to)
    }

    /// Fraction of samples in `[from, to)` whose value is ≥ `level`.
    pub fn fraction_at_or_above(&self, level: u64, from: SimTime, to: SimTime) -> f64 {
        let mut total = 0usize;
        let mut hit = 0usize;
        for (_, v) in self.window(from, to) {
            total += 1;
            if v >= level {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

/// A log of timestamped point events (e.g. PFC PAUSE frame emissions).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    times: Vec<SimTime>,
}

impl EventLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an occurrence.
    pub fn record(&mut self, t: SimTime) {
        if let Some(&last) = self.times.last() {
            debug_assert!(t >= last, "events must be recorded in time order");
        }
        self.times.push(t);
    }

    /// All occurrence times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Total number of occurrences.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Occurrences in `[from, to)`.
    pub fn count_in(&self, from: SimTime, to: SimTime) -> usize {
        self.times.iter().filter(|&&t| t >= from && t < to).count()
    }

    /// Time of the last occurrence, if any.
    pub fn last(&self) -> Option<SimTime> {
        self.times.last().copied()
    }
}

/// A log of closed/open intervals, e.g. "link paused from t1 to t2".
/// An interval still open when the simulation ends has `end == None`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntervalLog {
    intervals: Vec<(SimTime, Option<SimTime>)>,
}

impl IntervalLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new interval at `t`.
    ///
    /// # Panics
    /// Panics if the previous interval is still open.
    pub fn open(&mut self, t: SimTime) {
        if let Some(&(_, end)) = self.intervals.last() {
            assert!(end.is_some(), "previous interval still open");
        }
        self.intervals.push((t, None));
    }

    /// Close the currently open interval at `t`.
    ///
    /// # Panics
    /// Panics if no interval is open.
    pub fn close(&mut self, t: SimTime) {
        let last = self.intervals.last_mut().expect("no interval to close");
        assert!(last.1.is_none(), "no open interval");
        assert!(t >= last.0, "interval closes before it opens");
        last.1 = Some(t);
    }

    /// True iff an interval is currently open.
    pub fn is_open(&self) -> bool {
        matches!(self.intervals.last(), Some(&(_, None)))
    }

    /// All intervals.
    pub fn intervals(&self) -> &[(SimTime, Option<SimTime>)] {
        &self.intervals
    }

    /// Number of intervals (open or closed).
    pub fn count(&self) -> usize {
        self.intervals.len()
    }

    /// Total covered duration, treating an open interval as extending to `end_of_sim`.
    pub fn total_duration(&self, end_of_sim: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &(start, end) in &self.intervals {
            let end = end.unwrap_or(end_of_sim);
            if end > start {
                total += end - start;
            }
        }
        total
    }

    /// True iff instant `t` is covered by some interval (open intervals are
    /// treated as unbounded on the right).
    pub fn covers(&self, t: SimTime) -> bool {
        self.intervals
            .iter()
            .any(|&(s, e)| t >= s && e.is_none_or(|e| t < e))
    }
}

/// A bounded `(time, value)` sample ring: keeps the most recent
/// `capacity` samples and evicts the oldest ones as new samples arrive.
///
/// The telemetry layer records every probe into one of these, so a long
/// run's memory stays bounded no matter how fine the sampling cadence:
/// the ring always holds the trailing window, and [`RingSeries::pushed`]
/// says how many samples were ever recorded (the difference was evicted).
/// Values are `f64` because probes mix units (ratios, bytes, bits/s).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingSeries {
    capacity: usize,
    samples: std::collections::VecDeque<(SimTime, f64)>,
    pushed: u64,
}

impl RingSeries {
    /// An empty ring holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSeries {
            capacity,
            samples: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            pushed: 0,
        }
    }

    /// Append a sample, evicting the oldest if the ring is full.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.samples.back() {
            debug_assert!(t >= last, "samples must be pushed in time order");
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((t, v));
        self.pushed += 1;
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (≥ [`RingSeries::len`]; the difference
    /// was evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.back().copied()
    }

    /// Largest retained value (`0.0` for an empty ring).
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Arithmetic mean of retained values (`0.0` for an empty ring).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }
}

/// A fixed-bucket histogram over u64 values (e.g. queue depths, latencies).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `n_buckets` buckets of `bucket_width` each; values beyond the last
    /// bucket land in an overflow counter.
    pub fn new(bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        Histogram {
            bucket_width,
            counts: vec![0; n_buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total observations (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i` (covering `[i*w, (i+1)*w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-quantile (0.0–1.0) by bucket upper bound.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        u64::MAX
    }
}

/// Accumulates delivered bytes and converts to average goodput.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bytes: Bytes,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl ThroughputMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a delivery of `size` completing at `t`.
    pub fn record(&mut self, t: SimTime, size: Bytes) {
        self.bytes += size;
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = Some(t);
    }

    /// Fold a contiguous batch of deliveries spanning `[first, last]` and
    /// totalling `bytes` into the meter in one step — the closed-form
    /// equivalent of many in-order `record` calls. Min/max-merging the
    /// window keeps the meter exact even when the batch precedes or
    /// follows deliveries that were recorded individually.
    pub fn record_span(&mut self, first: SimTime, last: SimTime, bytes: Bytes) {
        debug_assert!(first <= last, "span must be ordered");
        self.bytes += bytes;
        self.first = Some(self.first.map_or(first, |f| f.min(first)));
        self.last = Some(self.last.map_or(last, |l| l.max(last)));
    }

    /// Total bytes delivered.
    pub fn total_bytes(&self) -> Bytes {
        self.bytes
    }

    /// Average rate in bits/second over `[start, end]`; `None` if no traffic
    /// or a zero-length window.
    pub fn average_bps(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if end <= start || self.bytes.is_zero() {
            return None;
        }
        let dt = (end - start).as_secs_f64();
        Some(self.bytes.bits() as f64 / dt)
    }

    /// Time of last delivery.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_stats() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_us(1), 10);
        s.push(SimTime::from_us(2), 30);
        s.push(SimTime::from_us(3), 20);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), 30);
        assert_eq!(s.min(), 10);
        assert!((s.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_window_and_fraction() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(SimTime::from_us(i), i * 10);
        }
        let w: Vec<_> = s.window(SimTime::from_us(3), SimTime::from_us(6)).collect();
        assert_eq!(w.len(), 3);
        let f = s.fraction_at_or_above(50, SimTime::ZERO, SimTime::from_us(10));
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_defaults() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.fraction_at_or_above(1, SimTime::ZERO, SimTime::MAX), 0.0);
    }

    #[test]
    fn event_log_counts() {
        let mut l = EventLog::new();
        for i in [1u64, 2, 5, 9] {
            l.record(SimTime::from_us(i));
        }
        assert_eq!(l.count(), 4);
        assert_eq!(l.count_in(SimTime::from_us(2), SimTime::from_us(9)), 2);
        assert_eq!(l.last(), Some(SimTime::from_us(9)));
    }

    #[test]
    fn interval_log_lifecycle() {
        let mut l = IntervalLog::new();
        assert!(!l.is_open());
        l.open(SimTime::from_us(1));
        assert!(l.is_open());
        l.close(SimTime::from_us(3));
        l.open(SimTime::from_us(5));
        assert_eq!(l.count(), 2);
        // Open interval extends to end of sim.
        let total = l.total_duration(SimTime::from_us(8));
        assert_eq!(total.as_us(), 2 + 3);
        assert!(l.covers(SimTime::from_us(2)));
        assert!(!l.covers(SimTime::from_us(4)));
        assert!(l.covers(SimTime::from_us(100))); // still open
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn interval_double_open_panics() {
        let mut l = IntervalLog::new();
        l.open(SimTime::from_us(1));
        l.open(SimTime::from_us(2));
    }

    #[test]
    #[should_panic(expected = "no interval to close")]
    fn interval_close_without_open_panics() {
        let mut l = IntervalLog::new();
        l.close(SimTime::from_us(1));
    }

    #[test]
    fn ring_series_evicts_oldest() {
        let mut r = RingSeries::with_capacity(3);
        for i in 1..=5u64 {
            r.push(SimTime::from_us(i), i as f64);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushed(), 5);
        let kept: Vec<f64> = r.iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![3.0, 4.0, 5.0]);
        assert_eq!(r.last(), Some((SimTime::from_us(5), 5.0)));
        assert!((r.mean() - 4.0).abs() < 1e-12);
        assert!((r.max() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ring_series_round_trips_through_value() {
        let mut r = RingSeries::with_capacity(8);
        r.push(SimTime::from_us(1), 0.5);
        r.push(SimTime::from_us(2), 1.5);
        let v = r.to_value();
        let back = RingSeries::from_value(&v).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.capacity(), 8);
        assert_eq!(back.last(), Some((SimTime::from_us(2), 1.5)));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(10, 10);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.bucket(0), 10);
        assert_eq!(h.bucket(9), 10);
        assert_eq!(h.overflow(), 0);
        h.record(1_000);
        assert_eq!(h.overflow(), 1);
        let med = h.quantile(0.5);
        assert!((40..=60).contains(&med), "median {med}");
    }

    #[test]
    fn throughput_meter_average() {
        let mut m = ThroughputMeter::new();
        // 1000 bytes per us for 10 us = 8 Gbps.
        for i in 1..=10u64 {
            m.record(SimTime::from_us(i), Bytes::new(1000));
        }
        let bps = m.average_bps(SimTime::ZERO, SimTime::from_us(10)).unwrap();
        assert!((bps - 8e9).abs() / 8e9 < 1e-9);
        assert_eq!(m.total_bytes(), Bytes::new(10_000));
        assert_eq!(m.last_delivery(), Some(SimTime::from_us(10)));
        assert!(m.average_bps(SimTime::ZERO, SimTime::ZERO).is_none());
    }
}
