//! Deterministic random number generation.
//!
//! The simulator never touches OS entropy: every stream of randomness is a
//! pure function of a user-supplied 64-bit seed. `SimRng` is a SplitMix64
//! generator — tiny state, excellent statistical quality for simulation
//! jitter, and trivially forkable into independent per-component streams.

use rand::RngCore;

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The raw internal state. SplitMix64 advances by adding a constant
    /// *before* mixing, so `SimRng::new(rng.state())` continues the exact
    /// stream — which is what lets a checkpoint capture and resume every
    /// RNG mid-run.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derive an independent child stream, e.g. one per flow or per port.
    /// The child's stream is decorrelated from the parent's continuation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let mixed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling over the widening multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to \[0,1\]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed sample with the given mean (for Poisson
    /// inter-arrival jitter). Mean must be positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        let u = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Serializes as the bare state word; restoring continues the stream
/// exactly (see [`SimRng::state`]).
impl serde::Serialize for SimRng {
    fn to_value(&self) -> serde::value::Value {
        serde::Serialize::to_value(&self.state)
    }
}

impl serde::Deserialize for SimRng {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        Ok(SimRng {
            state: serde::Deserialize::from_value(v)?,
        })
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (SimRng::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = SimRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(100);
        let mut c2 = parent2.fork(100);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut p3 = SimRng::new(7);
        let mut other = p3.fork(101);
        let mut c3 = SimRng::new(7).fork(100);
        assert_ne!(other.next_u64(), c3.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(r.gen_range(7) < 7);
        }
        // bound 1 always yields 0.
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::new(1234);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} deviates >10% from {expected}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_exp_mean_converges() {
        let mut r = SimRng::new(77);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.gen_exp(mean)).sum();
        let avg = sum / n as f64;
        assert!((avg - mean).abs() < 0.05, "empirical mean {avg} vs {mean}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_capture_resumes_the_exact_stream() {
        let mut a = SimRng::new(42);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut resumed = SimRng::new(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn serde_round_trip_preserves_state() {
        let mut a = SimRng::new(9);
        a.next_u64();
        let v = serde::Serialize::to_value(&a);
        let mut b: SimRng = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rngcore_fill_bytes_deterministic() {
        let mut a = SimRng::new(8);
        let mut b = SimRng::new(8);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
