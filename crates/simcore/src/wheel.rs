//! Hierarchical timing wheel: the default index behind
//! [`EventQueue`](crate::event::EventQueue).
//!
//! Three levels of 256 power-of-two-spaced slots index the near future;
//! each slot is an intrusive doubly-linked list threaded through the
//! queue's generation-stamped slot arena, so schedule and cancel are O(1)
//! and handles are exactly the ones the heap backend hands out. Events
//! beyond the wheel horizon (2^24 ticks — flow stop times, fault
//! timelines, recovery scans) wait in an *overflow tier*, the same 4-ary
//! min-heap the heap backend uses, and migrate down into the wheels as
//! the cursor turns past them.
//!
//! ## Level placement (wrap-free)
//!
//! With tick `T = time_ps >> tick_shift` and cursor `C` (the tick of the
//! most recently popped event), an event lives at
//! `level = highest_differing_bit(T ^ C) / 8`. Because live events always
//! satisfy `T >= C`, and because every value in `[C, T]` shares the bits
//! of `T` above that differing bit, the level of an event can only
//! *decrease* as the cursor advances — events migrate down, never wrap
//! around. The same argument shows the slot index `(T >> 8k) & 0xFF` of a
//! level-k resident is always `>=` the cursor's own slot at that level,
//! so the occupancy bitmaps are scanned upward from the cursor position
//! only, with no wrap ambiguity.
//!
//! ## Exact `(time, seq)` order
//!
//! A level-0 slot holds exactly one tick but possibly many distinct
//! picosecond timestamps (and sequence numbers) within it, so level-0
//! lists are kept `(time, seq)`-sorted: inserts walk back from the tail
//! (one comparison for the common append — fresh events carry fresh
//! sequence numbers, and lockstep-synchronized simulations schedule
//! thousands of ties per tick), and the bucket minimum is always the
//! list head, O(1). Higher-level lists stay unsorted O(1) appends: they
//! are min-scanned at most once per slot, just before the cursor enters
//! and cascades them (redistributing one level down), so their residents
//! are re-sorted on the way into level 0. The overflow root is
//! compared against the wheel candidate on every peek/pop, so the pop
//! order is bit-identical to the reference heap — a property test in
//! `tests/proptest_core.rs` replays random interleavings against the heap
//! as the executable model.

use crate::event::{Slot, NO_POS};
use crate::time::{SimDuration, SimTime};

/// Bits per wheel level (2^8 = 256 slots per level).
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Wheel levels; ticks differing from the cursor above
/// `SLOT_BITS * LEVELS` bits go to the overflow tier.
const LEVELS: usize = 3;
/// Horizon in bits: events within `2^HORIZON_BITS` ticks of the cursor
/// live in the wheels.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Intrusive-list terminator.
const NIL: u32 = u32::MAX;
/// High bit of `Slot::pos` marking residence in the overflow heap
/// (the low 31 bits are then the heap position).
pub(crate) const OVF_BIT: u32 = 1 << 31;

/// Default tick granularity: 2^10 ps ≈ 1 ns, about 1/200th of the
/// serialization time of a 1000-byte packet at 40 Gbps.
pub const DEFAULT_TICK_SHIFT: u32 = 10;

/// Pick a tick size (as a power-of-two picosecond shift) from the link
/// serialization quantum: roughly quantum/4 per tick, so a level-0
/// rotation (256 ticks) spans about 64 quanta and back-to-back
/// serializations stay in level 0 with only a few occupied slots between
/// consecutive events, clamped to [2^6 ps, 2^16 ps].
pub fn tick_shift_for_quantum(quantum: SimDuration) -> u32 {
    let ps = quantum.as_ps().max(1);
    let target = (ps / 4).max(1);
    (63 - target.leading_zeros()).clamp(6, 16)
}

/// Overflow-tier heap arity (matches the heap backend).
const ARITY: usize = 4;

/// The wheel index. Owns no events — it threads intrusive lists through
/// the [`EventQueue`](crate::event::EventQueue) slot arena it is given.
pub(crate) struct WheelState {
    tick_shift: u32,
    /// Cursor tick: the tick of the most recently popped event. Every
    /// live event's tick is `>= cur`.
    cur: u64,
    /// `LEVELS * SLOTS` list heads (slot-arena indices, `NIL` if empty).
    /// Fixed-size and stored inline: every push/pop touches these a
    /// handful of times, and a constant-length array costs neither the
    /// pointer chase nor the length load of a `Vec`.
    head: [u32; LEVELS * SLOTS],
    /// Matching list tails.
    tail: [u32; LEVELS * SLOTS],
    /// Per-level occupancy bitmap over the 256 slots.
    occ: [[u64; SLOTS / 64]; LEVELS],
    /// Live events resident in the wheels (not counting overflow).
    wheel_len: usize,
    /// Wheel residents at levels >= 1. Simulations whose whole working
    /// set fits one level-0 rotation (every datapath steady state) keep
    /// this at zero, letting `find_min`/`select_min` skip the
    /// cursor-slot scans and cascade checks of the higher levels on
    /// every single pop.
    hi_len: usize,
    /// Far-future events as a 4-ary min-heap of arena indices ordered by
    /// `(time, seq)`.
    overflow: Vec<u32>,
}

impl WheelState {
    pub(crate) fn new(tick_shift: u32) -> Self {
        WheelState {
            tick_shift,
            cur: 0,
            head: [NIL; LEVELS * SLOTS],
            tail: [NIL; LEVELS * SLOTS],
            occ: [[0; SLOTS / 64]; LEVELS],
            wheel_len: 0,
            hi_len: 0,
            overflow: Vec::new(),
        }
    }

    pub(crate) fn tick_shift(&self) -> u32 {
        self.tick_shift
    }

    pub(crate) fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    #[inline]
    fn tick_of(&self, t: SimTime) -> u64 {
        t.as_ps() >> self.tick_shift
    }

    /// `(level, slot)` for `tick` relative to cursor `cur`, or `None` if
    /// the event belongs in the overflow tier.
    #[inline]
    fn place(tick: u64, cur: u64) -> Option<(usize, usize)> {
        let x = tick ^ cur;
        // Fast path: almost everything a simulation schedules lands
        // within the current level-0 rotation.
        if x < SLOTS as u64 {
            return Some((0, (tick & SLOT_MASK) as usize));
        }
        if x >> HORIZON_BITS != 0 {
            return None;
        }
        let level = (63 - x.leading_zeros()) as usize / SLOT_BITS as usize;
        let slot = ((tick >> (SLOT_BITS as usize * level)) & SLOT_MASK) as usize;
        Some((level, slot))
    }

    /// Insert arena slot `idx` (time/seq already set by the caller).
    #[inline]
    pub(crate) fn insert<E>(&mut self, slots: &mut [Slot<E>], idx: u32) {
        let tick = self.tick_of(slots[idx as usize].time);
        debug_assert!(tick >= self.cur, "wheel insert behind cursor");
        match Self::place(tick, self.cur) {
            Some((level, slot)) => self.push_bucket(slots, idx, level, slot),
            None => self.overflow_push(slots, idx),
        }
    }

    fn push_bucket<E>(&mut self, slots: &mut [Slot<E>], idx: u32, level: usize, slot: usize) {
        let b = level * SLOTS + slot;
        let i = idx as usize;
        slots[i].pos = b as u32;
        if level == 0 {
            // Level-0 lists are kept `(time, seq)`-sorted so the bucket
            // minimum is the head. A slot spans a single tick, so only
            // exact-tick ties share a list; the walk back from the tail is
            // one comparison for the common append (fresh events carry
            // fresh sequence numbers, cascades deliver in sorted order) —
            // lockstep-synchronized simulations schedule thousands of
            // same-timestamp events without degrading the pop path.
            let (time, seq) = (slots[i].time, slots[i].seq);
            let mut after = self.tail[b];
            while after != NIL {
                let a = &slots[after as usize];
                if (a.time, a.seq) <= (time, seq) {
                    break;
                }
                after = a.prev;
            }
            let before = if after == NIL {
                self.head[b]
            } else {
                slots[after as usize].next
            };
            slots[i].prev = after;
            slots[i].next = before;
            if after == NIL {
                if self.head[b] == NIL {
                    self.occ[0][slot >> 6] |= 1 << (slot & 63);
                }
                self.head[b] = idx;
            } else {
                slots[after as usize].next = idx;
            }
            if before == NIL {
                self.tail[b] = idx;
            } else {
                slots[before as usize].prev = idx;
            }
        } else {
            // Higher levels are staging areas: append in O(1). They are
            // only min-scanned at most once per slot (just before the
            // cursor enters and cascades them), so order inside doesn't
            // matter.
            slots[i].next = NIL;
            let t = self.tail[b];
            slots[i].prev = t;
            if t == NIL {
                self.head[b] = idx;
                self.occ[level][slot >> 6] |= 1 << (slot & 63);
            } else {
                slots[t as usize].next = idx;
            }
            self.tail[b] = idx;
            self.hi_len += 1;
        }
        self.wheel_len += 1;
    }

    fn unlink<E>(&mut self, slots: &mut [Slot<E>], idx: u32) {
        let i = idx as usize;
        let b = slots[i].pos as usize;
        debug_assert!(b < LEVELS * SLOTS, "unlink of non-bucket resident");
        let (prev, next) = (slots[i].prev, slots[i].next);
        if prev == NIL {
            self.head[b] = next;
        } else {
            slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail[b] = prev;
        } else {
            slots[next as usize].prev = prev;
        }
        if self.head[b] == NIL {
            let (level, slot) = (b / SLOTS, b % SLOTS);
            self.occ[level][slot >> 6] &= !(1 << (slot & 63));
        }
        if b >= SLOTS {
            self.hi_len -= 1;
        }
        self.wheel_len -= 1;
    }

    /// Remove `idx` wherever it lives (bucket list or overflow heap).
    /// Used by `cancel`; the caller releases the arena slot.
    pub(crate) fn remove<E>(&mut self, slots: &mut [Slot<E>], idx: u32) {
        let pos = slots[idx as usize].pos;
        if pos & OVF_BIT != 0 {
            self.overflow_remove_at(slots, (pos & !OVF_BIT) as usize);
        } else {
            self.unlink(slots, idx);
        }
    }

    /// First occupied slot index `>= from` at `level`, if any.
    #[inline]
    fn first_occupied_from(&self, level: usize, from: usize) -> Option<usize> {
        let words = &self.occ[level];
        let mut w = from >> 6;
        let mut mask = !0u64 << (from & 63);
        while w < SLOTS / 64 {
            let bits = words[w] & mask;
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            mask = !0;
        }
        None
    }

    #[inline]
    fn cursor_slot(&self, level: usize) -> usize {
        ((self.cur >> (SLOT_BITS as usize * level)) & SLOT_MASK) as usize
    }

    /// Fold every event of (unsorted, level >= 1) bucket `b` into the
    /// running `(time, seq)` min.
    fn bucket_min<E>(&self, slots: &[Slot<E>], b: usize, best: &mut Option<u32>) {
        let mut i = self.head[b];
        while i != NIL {
            let s = &slots[i as usize];
            let better = match *best {
                None => true,
                Some(bi) => {
                    let bs = &slots[bi as usize];
                    (s.time, s.seq) < (bs.time, bs.seq)
                }
            };
            if better {
                *best = Some(i);
            }
            i = s.next;
        }
    }

    /// Fold sorted level-0 bucket `b`'s minimum — its head — into the
    /// running `(time, seq)` min. O(1).
    fn bucket_head_min<E>(&self, slots: &[Slot<E>], b: usize, best: &mut Option<u32>) {
        let h = self.head[b];
        if h == NIL {
            return;
        }
        let better = match *best {
            None => true,
            Some(bi) => {
                let (s, bs) = (&slots[h as usize], &slots[bi as usize]);
                (s.time, s.seq) < (bs.time, bs.seq)
            }
        };
        if better {
            *best = Some(h);
        }
    }

    /// Exact `(time, seq)` minimum across wheels + overflow, without
    /// mutating anything (this is what keeps `peek_time` at `&self`).
    ///
    /// Candidates: the overflow root; the *cursor* slot of every level
    /// `>= 1` (whose range contains the cursor, so its residents — placed
    /// before the cursor advanced into the slot — may now be nearer than
    /// anything at lower levels); the first occupied level-0 slot at or
    /// after the cursor; and, if level 0 is empty, the first occupied
    /// slot of the lowest non-empty level (which dominates every
    /// higher-level non-cursor slot).
    pub(crate) fn find_min<E>(&self, slots: &[Slot<E>]) -> Option<u32> {
        let mut best: Option<u32> = None;
        if let Some(&root) = self.overflow.first() {
            best = Some(root);
        }
        if self.hi_len > 0 {
            for level in 1..LEVELS {
                let slot = self.cursor_slot(level);
                self.bucket_min(slots, level * SLOTS + slot, &mut best);
            }
        }
        if let Some(slot) = self.first_occupied_from(0, self.cursor_slot(0)) {
            self.bucket_head_min(slots, slot, &mut best);
        } else if self.hi_len > 0 {
            for level in 1..LEVELS {
                let from = self.cursor_slot(level) + 1;
                if from < SLOTS {
                    if let Some(slot) = self.first_occupied_from(level, from) {
                        self.bucket_min(slots, level * SLOTS + slot, &mut best);
                        break;
                    }
                }
            }
        }
        best
    }

    /// Detach bucket `b` wholesale and re-place each of its events
    /// relative to the current cursor. Every event strictly descends in
    /// level (its range contains or follows the cursor), so this
    /// terminates and costs each event at most `LEVELS` moves over its
    /// lifetime.
    fn cascade_bucket<E>(&mut self, slots: &mut [Slot<E>], b: usize) {
        let mut i = self.head[b];
        self.head[b] = NIL;
        self.tail[b] = NIL;
        let (level, slot) = (b / SLOTS, b % SLOTS);
        self.occ[level][slot >> 6] &= !(1 << (slot & 63));
        while i != NIL {
            let next = slots[i as usize].next;
            self.wheel_len -= 1;
            self.hi_len -= 1;
            let tick = self.tick_of(slots[i as usize].time);
            let (nl, ns) = Self::place(tick, self.cur).expect("cascaded event within horizon");
            debug_assert!(
                nl < level || (nl == level && ns >= slot),
                "cascade must not ascend"
            );
            self.push_bucket(slots, i, nl, ns);
            i = next;
        }
    }

    /// Steps 1–3 of a pop: cascade stale cursor slots, then pick the
    /// `(time, seq)` winner among wheels and overflow. Returns the winner
    /// and the bucket it was found in (`None` = overflow tier). Mutates
    /// only by cascading, which never changes the pop order — so a pop
    /// abandoned after `select_min` (see `pop_min_before`) is harmless.
    fn select_min<E>(&mut self, slots: &mut [Slot<E>]) -> Option<(u32, Option<usize>)> {
        // 1. Cursor slots at levels >= 1 hold events whose true level has
        //    decayed; flush them down (high to low, so a level-2 flush
        //    can land in the level-1 cursor slot and still be flushed).
        //    With nothing resident above level 0 (`hi_len == 0`, the
        //    datapath steady state) both the cascade checks and the
        //    higher-level fallback scans are dead weight — skip them.
        if self.hi_len > 0 {
            for level in (1..LEVELS).rev() {
                let b = level * SLOTS + self.cursor_slot(level);
                if self.head[b] != NIL {
                    self.cascade_bucket(slots, b);
                }
            }
        }
        // 2. Wheel candidate: first occupied level-0 slot, else the first
        //    occupied slot of the lowest non-empty level.
        let mut best: Option<u32> = None;
        let mut from_bucket: Option<usize> = None;
        if let Some(slot) = self.first_occupied_from(0, self.cursor_slot(0)) {
            self.bucket_head_min(slots, slot, &mut best);
            from_bucket = Some(slot);
        } else if self.hi_len > 0 {
            for level in 1..LEVELS {
                if let Some(slot) = self.first_occupied_from(level, self.cursor_slot(level)) {
                    let b = level * SLOTS + slot;
                    self.bucket_min(slots, b, &mut best);
                    from_bucket = Some(b);
                    break;
                }
            }
        }
        // 3. Overflow candidate.
        if let Some(&root) = self.overflow.first() {
            let replace = match best {
                None => true,
                Some(bi) => {
                    let (bs, os) = (&slots[bi as usize], &slots[root as usize]);
                    (os.time, os.seq) < (bs.time, bs.seq)
                }
            };
            if replace {
                best = Some(root);
                from_bucket = None;
            }
        }
        best.map(|idx| (idx, from_bucket))
    }

    /// Pop the `(time, seq)` minimum: cascade stale cursor slots, pick
    /// the winner among wheels and overflow, advance the cursor to its
    /// tick, and migrate newly-in-horizon overflow events down.
    pub(crate) fn pop_min<E>(&mut self, slots: &mut [Slot<E>]) -> Option<u32> {
        let (idx, from_bucket) = self.select_min(slots)?;
        self.finish_pop(slots, idx, from_bucket);
        Some(idx)
    }

    /// `pop_min`, but only if the winner's time is `<= limit` — the
    /// peek-and-pop of a horizon-bounded run loop as one search. A
    /// beyond-limit winner stays resident (cascading done on the way is
    /// order-neutral) and `None` is returned.
    #[inline]
    pub(crate) fn pop_min_before<E>(
        &mut self,
        slots: &mut [Slot<E>],
        limit: SimTime,
    ) -> Option<u32> {
        let (idx, from_bucket) = self.select_min(slots)?;
        if slots[idx as usize].time > limit {
            return None;
        }
        self.finish_pop(slots, idx, from_bucket);
        Some(idx)
    }

    /// `pop_min_before`, but *deferring the cursor*: the winner is
    /// detached and returned while the cursor stays put until the
    /// caller commits it with [`advance_cursor`](Self::advance_cursor).
    /// The batching layer pops the wheel's minimum this way, runs any
    /// parked reserved-sequence entries that precede it (whose ticks
    /// may fall between the old cursor and the winner's tick — legal
    /// insert targets only while the cursor has not advanced), then
    /// commits. Cursor-dependent cleanup (overflow migration, survivor
    /// cascades) waits for the next regular pop; both are pure
    /// placement maintenance and never affect pop order.
    #[inline]
    pub(crate) fn pop_min_before_deferred<E>(
        &mut self,
        slots: &mut [Slot<E>],
        limit: SimTime,
    ) -> Option<u32> {
        let (idx, from_bucket) = self.select_min(slots)?;
        if slots[idx as usize].time > limit {
            return None;
        }
        match from_bucket {
            None => {
                let pos = slots[idx as usize].pos;
                debug_assert!(pos & OVF_BIT != 0);
                self.overflow_remove_at(slots, (pos & !OVF_BIT) as usize);
            }
            Some(_) => self.unlink(slots, idx),
        }
        Some(idx)
    }

    /// Commit the cursor to `t`'s tick — the deferred half of
    /// [`pop_min_before_deferred`](Self::pop_min_before_deferred). The
    /// caller guarantees every live event ticks at or after `t` (the
    /// deferred winner was the minimum, and everything inserted since
    /// that would precede it was routed around the wheel).
    #[inline]
    pub(crate) fn advance_cursor(&mut self, t: SimTime) {
        let tick = self.tick_of(t);
        debug_assert!(tick >= self.cur, "cursor commit moved backwards");
        self.cur = tick;
    }

    /// Step 4 of a pop: advance the cursor to winner `idx`'s tick and
    /// detach it from `from_bucket` (`None` = overflow tier).
    fn finish_pop<E>(&mut self, slots: &mut [Slot<E>], idx: u32, from_bucket: Option<usize>) {
        // Advance the cursor to the winner's tick; everything live is
        // at or after it.
        let tick = self.tick_of(slots[idx as usize].time);
        debug_assert!(tick >= self.cur, "pop moved the cursor backwards");
        self.cur = tick;
        match from_bucket {
            None => {
                let pos = slots[idx as usize].pos;
                debug_assert!(pos & OVF_BIT != 0);
                self.overflow_remove_at(slots, (pos & !OVF_BIT) as usize);
                // Migrate the newly-reachable prefix of the overflow tier
                // into the wheels ("events migrate down as wheels turn").
                while let Some(&root) = self.overflow.first() {
                    let rt = self.tick_of(slots[root as usize].time);
                    if Self::place(rt, self.cur).is_none() {
                        break;
                    }
                    self.overflow_remove_at(slots, 0);
                    self.insert(slots, root);
                }
            }
            Some(b) => {
                self.unlink(slots, idx);
                // If the winner came from a level >= 1 slot, the cursor
                // just entered that slot's range: flush the survivors
                // down so the next pop scans short level-0 lists.
                if b >= SLOTS && self.head[b] != NIL {
                    self.cascade_bucket(slots, b);
                }
            }
        }
    }

    /// Forget every resident without touching the arena (the queue
    /// releases the slots); capacity is retained.
    pub(crate) fn clear_index(&mut self) {
        self.head.fill(NIL);
        self.tail.fill(NIL);
        self.occ = [[0; SLOTS / 64]; LEVELS];
        self.wheel_len = 0;
        self.hi_len = 0;
        self.overflow.clear();
    }

    /// Rewind the cursor to t = 0 (after `clear_index`, for arena reuse).
    pub(crate) fn reset_cursor(&mut self) {
        debug_assert_eq!(self.wheel_len + self.overflow.len(), 0);
        self.cur = 0;
    }

    /// Park the cursor at an arbitrary tick on an *empty* index — the
    /// checkpoint-restore path, which re-inserts a snapshot's events after
    /// placing the cursor at the snapshot's current time. Every restored
    /// event's tick is `>=` the restored cursor, so the level-placement
    /// invariant holds exactly as in a live run.
    pub(crate) fn set_cursor(&mut self, tick: u64) {
        debug_assert_eq!(self.wheel_len + self.overflow.len(), 0);
        self.cur = tick;
    }

    // ---- overflow tier: 4-ary min-heap by (time, seq) ----------------

    #[inline]
    fn ovf_before<E>(slots: &[Slot<E>], a: u32, b: u32) -> bool {
        let (sa, sb) = (&slots[a as usize], &slots[b as usize]);
        (sa.time, sa.seq) < (sb.time, sb.seq)
    }

    fn overflow_push<E>(&mut self, slots: &mut [Slot<E>], idx: u32) {
        let pos = self.overflow.len();
        slots[idx as usize].pos = OVF_BIT | pos as u32;
        self.overflow.push(idx);
        self.ovf_sift_up(slots, pos);
    }

    fn overflow_remove_at<E>(&mut self, slots: &mut [Slot<E>], pos: usize) {
        let last = self.overflow.len() - 1;
        self.overflow.swap(pos, last);
        let removed = self.overflow.pop().expect("overflow remove on empty heap");
        slots[removed as usize].pos = NO_POS;
        if pos < self.overflow.len() {
            slots[self.overflow[pos] as usize].pos = OVF_BIT | pos as u32;
            self.ovf_sift_down(slots, pos);
            self.ovf_sift_up(slots, pos);
        }
    }

    fn ovf_sift_up<E>(&mut self, slots: &mut [Slot<E>], mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if Self::ovf_before(slots, self.overflow[pos], self.overflow[parent]) {
                self.ovf_swap(slots, pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn ovf_sift_down<E>(&mut self, slots: &mut [Slot<E>], mut pos: usize) {
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.overflow.len() {
                break;
            }
            let mut bestc = first_child;
            let end = (first_child + ARITY).min(self.overflow.len());
            for c in first_child + 1..end {
                if Self::ovf_before(slots, self.overflow[c], self.overflow[bestc]) {
                    bestc = c;
                }
            }
            if Self::ovf_before(slots, self.overflow[bestc], self.overflow[pos]) {
                self.ovf_swap(slots, pos, bestc);
                pos = bestc;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn ovf_swap<E>(&mut self, slots: &mut [Slot<E>], a: usize, b: usize) {
        self.overflow.swap(a, b);
        slots[self.overflow[a] as usize].pos = OVF_BIT | a as u32;
        slots[self.overflow[b] as usize].pos = OVF_BIT | b as u32;
    }

    /// Events currently parked in the overflow tier (introspection for
    /// tests and stats).
    pub(crate) fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}
