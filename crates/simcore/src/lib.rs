//! # pfcsim-simcore — deterministic discrete-event simulation core
//!
//! The foundation of the `pfcsim` workspace: integer picosecond time
//! ([`time`]), exact data-size/rate units ([`units`]), a deterministic
//! future-event list ([`event`]), seeded randomness ([`rng`]) and
//! measurement recorders ([`series`]).
//!
//! Everything here is purely computational and deterministic by design:
//! a packet-level simulator must be bit-reproducible to debug deadlock
//! formation, so no wall-clock time, OS entropy, or thread scheduling may
//! leak into results. The one concession to parallel execution is
//! [`threads`], a process-wide worker-thread *budget* — pure accounting
//! that bounds how many threads the layers above may spawn, without ever
//! influencing what they compute.
//!
//! ```
//! use pfcsim_simcore::prelude::*;
//!
//! // 40 KB at 40 Gbps serializes in exactly 8 us.
//! let t = BitRate::from_gbps(40).serialization_time(Bytes::from_kb(40));
//! assert_eq!(t, SimDuration::from_us(8));
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_ns(10), "arrive");
//! assert_eq!(q.pop(), Some((SimTime::from_ns(10), "arrive")));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod rng;
pub mod scratch;
pub mod series;
pub mod snap;
pub mod threads;
pub mod time;
pub mod units;
pub mod wheel;

/// One-stop import for downstream crates.
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::event::{Backend, EventId, EventQueue};
    pub use crate::rng::SimRng;
    pub use crate::series::{
        EventLog, Histogram, IntervalLog, RingSeries, ThroughputMeter, TimeSeries,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::{BitRate, Bytes};
}
