//! The workspace-wide error type.
//!
//! Every fallible operation in the workspace — config validation,
//! builder `try_*` setters, checkpoint encode/decode, serve-protocol
//! parsing — funnels into one [`Error`] enum so callers (in particular
//! the resident [`serve`](../pfcsim_net/serve/index.html) session) can
//! match on a typed variant instead of parsing strings or catching
//! panics.
//!
//! Historically the workspace grew three partially-overlapping error
//! surfaces: `Result<_, String>` from validators and `try_*` setters,
//! `CheckpointError` in `pfcsim-net`, and [`SnapError`](crate::snap::SnapError)
//! in the snapshot codec. `CheckpointError` is now a type alias for
//! [`Error`] (the variant names were kept), plain-`String` errors
//! convert via [`From`], and `SnapError` nests under
//! [`Error::Corrupt`].

use crate::snap::SnapError;

/// Unified workspace error.
///
/// Variants are grouped by origin:
///
/// * configuration / input validation — [`Error::Config`];
/// * checkpoint persistence — [`Error::Io`], [`Error::Corrupt`],
///   [`Error::Decode`], [`Error::ConfigDigestMismatch`],
///   [`Error::Unsupported`];
/// * the serve protocol — [`Error::Protocol`];
/// * lifecycle misuse (e.g. mutating a finished session) —
///   [`Error::State`].
#[derive(Debug)]
pub enum Error {
    /// Invalid configuration or input (threshold ordering, unknown node,
    /// duplicate flow id, …).
    Config(String),
    /// The underlying I/O operation failed.
    Io(std::io::Error),
    /// The byte stream is not a valid snapshot frame.
    Corrupt(SnapError),
    /// The frame decoded but its contents do not describe a valid state.
    Decode(String),
    /// The checkpoint was produced under a different configuration.
    ConfigDigestMismatch {
        /// Digest recorded in the checkpoint.
        checkpoint: u64,
        /// Digest of the live configuration.
        live: u64,
    },
    /// The checkpoint uses a feature or version this build cannot restore.
    Unsupported(String),
    /// A serve-protocol request was malformed or referenced an unknown op.
    Protocol(String),
    /// The operation is not valid in the current lifecycle state.
    State(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config(why) => write!(f, "invalid configuration: {why}"),
            Error::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            Error::Corrupt(e) => write!(f, "corrupt checkpoint: {e}"),
            Error::Decode(why) => write!(f, "checkpoint decode failed: {why}"),
            Error::ConfigDigestMismatch { checkpoint, live } => write!(
                f,
                "config digest mismatch: checkpoint {checkpoint:#018x}, live {live:#018x}"
            ),
            Error::Unsupported(why) => write!(f, "unsupported checkpoint: {why}"),
            Error::Protocol(why) => write!(f, "protocol error: {why}"),
            Error::State(why) => write!(f, "invalid state: {why}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<String> for Error {
    fn from(why: String) -> Self {
        Error::Config(why)
    }
}

impl From<&str> for Error {
    fn from(why: &str) -> Self {
        Error::Config(why.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<SnapError> for Error {
    fn from(e: SnapError) -> Self {
        Error::Corrupt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed_by_origin() {
        let e: Error = "bad threshold".into();
        assert_eq!(e.to_string(), "invalid configuration: bad threshold");
        let e = Error::Protocol("unknown op \"frobnicate\"".into());
        assert!(e.to_string().starts_with("protocol error"));
        let e = Error::ConfigDigestMismatch {
            checkpoint: 1,
            live: 2,
        };
        assert!(e.to_string().contains("0x0000000000000001"));
    }

    #[test]
    fn conversions() {
        let e: Error = Error::from(SnapError::Truncated);
        assert!(matches!(e, Error::Corrupt(SnapError::Truncated)));
        let e: Error = std::io::Error::other("x").into();
        assert!(matches!(e, Error::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
