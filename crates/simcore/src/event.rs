//! Deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled. This makes every
//! simulation a pure function of its inputs — there is no dependence on heap
//! iteration order or hashing.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: Option<E>,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with deterministic tie-breaking and O(log n)
/// schedule/pop. Cancellation is lazy: cancelled entries are skipped on pop.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// Sequence numbers scheduled but neither popped nor cancelled.
    pending: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            pending: std::collections::HashSet::new(),
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or `SimTime::ZERO` before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not-yet-cancelled) scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True iff no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload: Some(payload),
        });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed never to fire). Cancelling an
    /// event that already fired, or was already cancelled, returns `false`
    /// and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let mut entry = self.heap.pop()?;
        self.now = entry.time;
        self.pending.remove(&entry.seq);
        let payload = entry.payload.take().expect("live entry has payload");
        Some((entry.time, payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if !self.pending.contains(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Drop every pending event (used when tearing a simulation down early).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i, "FIFO tie-break violated");
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(7));
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        let b = q.schedule(SimTime::from_ns(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(b) || q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), 1);
        q.schedule(SimTime::from_ns(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 10);
        q.schedule(SimTime::from_ns(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        // Schedule relative to now.
        let now = q.now();
        q.schedule(now + SimDuration::from_ns(2), 7);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
