//! Deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled. This makes every
//! simulation a pure function of its inputs — there is no dependence on heap
//! iteration order or hashing.
//!
//! The implementation is an indexed 4-ary min-heap over a slot arena.
//! Every scheduled event owns a slot; the handle returned by
//! [`EventQueue::schedule`] packs the slot index with a generation stamp,
//! so cancellation is an O(log n) heap removal with a constant-time
//! staleness check — no hashing, no lazily-buried tombstones, and the
//! backing storage never holds more than the live event count.

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
///
/// Packs `(slot index, generation)`; a handle goes stale the moment its
/// event fires or is cancelled, and stale handles are rejected even after
/// the slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }
    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }
    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Sentinel for "not in the heap".
const NO_POS: u32 = u32::MAX;

struct Slot<E> {
    time: SimTime,
    seq: u64,
    /// Bumped every time the slot is vacated; stale handles never match.
    gen: u32,
    /// Index into `heap`, or `NO_POS` when the slot is free.
    pos: u32,
    payload: Option<E>,
}

/// A future-event list with deterministic tie-breaking, O(log n)
/// schedule/pop, and O(log n) eager cancellation via generation-stamped
/// handles.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    /// Vacant slot indices, reused LIFO.
    free: Vec<u32>,
    /// 4-ary min-heap of slot indices, ordered by the slots' `(time, seq)`.
    heap: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Heap arity. Four keeps the tree shallow (hot for pop-heavy workloads)
/// while sift-down still scans few children.
const ARITY: usize = 4;

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or `SimTime::ZERO` before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not-yet-cancelled) scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len() as u32;
        let idx = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.time = at;
                s.seq = seq;
                s.pos = pos;
                s.payload = Some(payload);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    time: at,
                    seq,
                    gen: 0,
                    pos,
                    payload: Some(payload),
                });
                idx
            }
        };
        self.heap.push(idx);
        self.sift_up(pos as usize);
        EventId::new(idx, self.slots[idx as usize].gen)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed never to fire). Cancelling an
    /// event that already fired, or was already cancelled, returns `false`
    /// and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let idx = id.slot();
        match self.slots.get(idx as usize) {
            Some(s) if s.gen == id.gen() && s.pos != NO_POS => {
                let pos = s.pos as usize;
                self.remove_at(pos);
                self.release(idx);
                true
            }
            _ => false,
        }
    }

    /// Timestamp of the next live event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&i| self.slots[i as usize].time)
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &root = self.heap.first()?;
        self.remove_at(0);
        let s = &mut self.slots[root as usize];
        let time = s.time;
        let payload = s.payload.take().expect("live entry has payload");
        self.now = time;
        self.release(root);
        Some((time, payload))
    }

    /// Drop every pending event (used when tearing a simulation down early).
    pub fn clear(&mut self) {
        while let Some(idx) = self.heap.pop() {
            self.slots[idx as usize].payload = None;
            self.release(idx);
        }
    }

    /// Mark `idx` vacant, invalidating outstanding handles to it.
    #[inline]
    fn release(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.pos = NO_POS;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx);
    }

    /// `(time, seq)` min-order between two slot indices.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (&self.slots[a as usize], &self.slots[b as usize]);
        (sa.time, sa.seq) < (sb.time, sb.seq)
    }

    /// Remove the heap entry at `pos`, preserving the heap invariant.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let removed = self.heap.pop().expect("remove_at on empty heap");
        self.slots[removed as usize].pos = NO_POS;
        if pos < self.heap.len() {
            self.slots[self.heap[pos] as usize].pos = pos as u32;
            // The filler came from the heap's tail but an arbitrary
            // subtree; it may need to move either way. If sift_down moved
            // a former descendant up into `pos`, that element already
            // satisfies the parent bound, so the follow-up sift_up is a
            // single no-op comparison.
            self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.before(self.heap[pos], self.heap[parent]) {
                self.swap_heap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(self.heap.len());
            for c in first_child + 1..end {
                if self.before(self.heap[c], self.heap[best]) {
                    best = c;
                }
            }
            if self.before(self.heap[best], self.heap[pos]) {
                self.swap_heap(pos, best);
                pos = best;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn swap_heap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].pos = a as u32;
        self.slots[self.heap[b] as usize].pos = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i, "FIFO tie-break violated");
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(7));
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        let b = q.schedule(SimTime::from_ns(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(b) || q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), 1);
        q.schedule(SimTime::from_ns(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 10);
        q.schedule(SimTime::from_ns(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        // Schedule relative to now.
        let now = q.now();
        q.schedule(now + SimDuration::from_ns(2), 7);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn stale_handle_rejected_after_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a");
        assert!(q.cancel(a));
        // Reuses a's slot; the old handle must not be able to cancel it.
        let b = q.schedule(SimTime::from_ns(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(b), "fired handle is stale");
    }

    #[test]
    fn stale_handle_rejected_after_clear() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), 1);
        q.clear();
        assert!(!q.cancel(a));
        q.schedule(SimTime::from_ns(2), 2);
        assert!(!q.cancel(a), "pre-clear handle must stay stale");
    }

    /// Regression for the cancelled-entry leak: with lazy cancellation the
    /// backing heap retained tombstones until they surfaced, so a
    /// schedule/cancel churn at a far-future timestamp grew storage without
    /// bound. Eager removal keeps both the heap and the slot arena at the
    /// live-event footprint.
    #[test]
    fn cancelled_entries_are_reclaimed_not_leaked() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_ns(1_000_000), "keep");
        for _ in 0..10_000 {
            let id = q.schedule(SimTime::from_ns(999_999), "churn");
            assert!(q.cancel(id));
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.heap.len(), 1, "heap retains cancelled tombstones");
        assert!(
            q.slots.len() <= 2,
            "slot arena grew to {} despite churn reuse",
            q.slots.len()
        );
        assert!(q.cancel(keep));
        assert!(q.is_empty());
    }

    /// Randomised (but seeded, self-contained) interleaving of
    /// schedule/cancel/pop against a sorted-vec reference model.
    #[test]
    fn interleaving_matches_reference_model() {
        // xorshift64* — deterministic, no external deps.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        let mut q = EventQueue::new();
        let mut live: Vec<(u64, u64, EventId)> = Vec::new(); // (time_ns, tag, id)
        let mut popped: Vec<u64> = Vec::new();
        let mut expected: Vec<u64> = Vec::new();
        let mut tag = 0u64;
        for _ in 0..5_000 {
            match rng() % 10 {
                0..=4 => {
                    let t = q.now().as_ns() + rng() % 50;
                    let id = q.schedule(SimTime::from_ns(t), tag);
                    live.push((t, tag, id));
                    tag += 1;
                }
                5..=6 if !live.is_empty() => {
                    let victim = (rng() % live.len() as u64) as usize;
                    let (_, _, id) = live.swap_remove(victim);
                    assert!(q.cancel(id));
                }
                _ => {
                    if let Some((t, v)) = q.pop() {
                        popped.push(v);
                        // Reference: earliest (time, tag) among live.
                        let best = live
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(bt, btag, _))| (bt, btag))
                            .map(|(i, _)| i)
                            .expect("model had no live events");
                        let (bt, btag, _) = live.swap_remove(best);
                        assert_eq!((t.as_ns(), v), (bt, btag));
                        expected.push(btag);
                    }
                }
            }
        }
        assert_eq!(popped, expected);
        assert_eq!(q.len(), live.len());
    }
}
