//! Deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled. This makes every
//! simulation a pure function of its inputs — there is no dependence on heap
//! iteration order or hashing.
//!
//! Two interchangeable backends share one generation-stamped slot arena,
//! so handles and `cancel` semantics are identical and the pop order is
//! bit-for-bit the same:
//!
//! * [`Backend::Wheel`] (default) — a hierarchical timing wheel
//!   ([`crate::wheel`]): O(1) schedule/cancel and amortized-O(1) pop for
//!   the short-horizon, high-churn traffic a packet simulation generates,
//!   with the 4-ary heap retained as an overflow tier for far-future
//!   events.
//! * [`Backend::Heap`] — an indexed 4-ary min-heap over the arena:
//!   O(log n) everything, no tuning parameters; the executable reference
//!   model for the wheel's property tests.
//!
//! Every scheduled event owns a slot; the handle returned by
//! [`EventQueue::schedule`] packs the slot index with a generation stamp,
//! so cancellation is eager with a constant-time staleness check — no
//! hashing, no lazily-buried tombstones, and the backing storage never
//! holds more than the live event count.

use crate::time::SimTime;
use crate::wheel::{WheelState, DEFAULT_TICK_SHIFT};

/// Handle to a scheduled event, usable for cancellation.
///
/// Packs `(slot index, generation)`; a handle goes stale the moment its
/// event fires or is cancelled, and stale handles are rejected even after
/// the slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }
    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }
    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Which index structure an [`EventQueue`] uses. Pop order is identical;
/// only the complexity profile differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Backend {
    /// Hierarchical timing wheel with a heap overflow tier (the default).
    Wheel,
    /// Indexed 4-ary min-heap (the reference implementation).
    Heap,
}

impl Backend {
    /// Read the `PFCSIM_SCHED` override (`wheel` or `heap`,
    /// case-insensitive). Unset or unrecognized values yield `None`.
    pub fn from_env() -> Option<Backend> {
        match std::env::var("PFCSIM_SCHED")
            .ok()?
            .to_ascii_lowercase()
            .as_str()
        {
            "wheel" => Some(Backend::Wheel),
            "heap" => Some(Backend::Heap),
            _ => None,
        }
    }

    /// Stable lowercase name (used in bench reports).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Wheel => "wheel",
            Backend::Heap => "heap",
        }
    }
}

/// Sentinel for "not queued".
pub(crate) const NO_POS: u32 = u32::MAX;

pub(crate) struct Slot<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    /// Bumped every time the slot is vacated; stale handles never match.
    pub(crate) gen: u32,
    /// Where the event lives: `NO_POS` when free; for the heap backend a
    /// heap index; for the wheel a bucket id, or `OVF_BIT | heap index`
    /// in the overflow tier.
    pub(crate) pos: u32,
    /// Intrusive wheel-bucket links (unused by the heap backend).
    pub(crate) prev: u32,
    pub(crate) next: u32,
    pub(crate) payload: Option<E>,
}

/// A future-event list with deterministic tie-breaking, eager O(log n)
/// (heap) / O(1) (wheel) cancellation via generation-stamped handles, and
/// capacity that survives [`EventQueue::reset`] for reuse across runs.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    /// Vacant slot indices, reused LIFO.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    core: Core,
}

// The wheel's fixed-size slot index (~6 KiB of inline arrays) dwarfs the
// heap variant, but one queue exists per simulation and the wheel is the
// default backend — boxing it would put a pointer chase back on the
// hottest path that the inline arrays exist to avoid.
#[allow(clippy::large_enum_variant)]
enum Core {
    Heap(HeapCore),
    Wheel(WheelState),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Heap arity. Four keeps the tree shallow (hot for pop-heavy workloads)
/// while sift-down still scans few children.
const ARITY: usize = 4;

impl<E> EventQueue<E> {
    /// An empty queue at t = 0 on the default backend: the `PFCSIM_SCHED`
    /// environment override if set, otherwise the timing wheel.
    pub fn new() -> Self {
        Self::with_backend(Backend::from_env().unwrap_or(Backend::Wheel))
    }

    /// An empty queue on an explicit backend (wheel ticks default to
    /// [`DEFAULT_TICK_SHIFT`] ≈ 1 ns).
    pub fn with_backend(backend: Backend) -> Self {
        Self::with_backend_and_tick_shift(backend, DEFAULT_TICK_SHIFT)
    }

    /// An empty queue on an explicit backend with an explicit wheel tick
    /// granularity (`2^tick_shift` picoseconds per tick; ignored by the
    /// heap backend). See [`crate::wheel::tick_shift_for_quantum`].
    pub fn with_backend_and_tick_shift(backend: Backend, tick_shift: u32) -> Self {
        let core = match backend {
            Backend::Heap => Core::Heap(HeapCore { heap: Vec::new() }),
            Backend::Wheel => Core::Wheel(WheelState::new(tick_shift)),
        };
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            core,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> Backend {
        match self.core {
            Core::Heap(_) => Backend::Heap,
            Core::Wheel(_) => Backend::Wheel,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or `SimTime::ZERO` before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not-yet-cancelled) scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.core {
            Core::Heap(h) => h.heap.len(),
            Core::Wheel(w) => w.len(),
        }
    }

    /// True iff no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time (causality violation).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let (idx, gen) = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.time = at;
                s.seq = seq;
                s.payload = Some(payload);
                (idx, s.gen)
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    time: at,
                    seq,
                    gen: 0,
                    pos: NO_POS,
                    prev: NO_POS,
                    next: NO_POS,
                    payload: Some(payload),
                });
                (idx, 0)
            }
        };
        match &mut self.core {
            Core::Heap(h) => h.insert(&mut self.slots, idx),
            Core::Wheel(w) => w.insert(&mut self.slots, idx),
        }
        EventId::new(idx, gen)
    }

    /// Move a still-pending event to a new timestamp in place.
    ///
    /// Observationally identical to `cancel(id)` followed by
    /// `schedule(at, payload)` — the entry is re-keyed with a fresh
    /// sequence number, so it ties against other events exactly as a
    /// newly scheduled one would — but the arena slot is reused without
    /// a release/reacquire round trip and `id` stays valid for further
    /// reschedules or a final `cancel`. On the wheel this is O(1)
    /// bucket-to-bucket (unlink + relink); on the heap it re-sifts in
    /// place. This is the PFC pause-timer pattern: one deadline slot
    /// per port that each refresh pushes out instead of piling up a
    /// cancelled-timer storm.
    ///
    /// Returns `false` (and does nothing) if the event already fired or
    /// was cancelled.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn reschedule(&mut self, id: EventId, at: SimTime) -> bool {
        assert!(
            at >= self.now,
            "causality violation: rescheduling at {at} but now is {now}",
            at = at,
            now = self.now
        );
        let idx = id.slot();
        match self.slots.get(idx as usize) {
            Some(s) if s.gen == id.gen() && s.pos != NO_POS => {
                let seq = self.next_seq;
                self.next_seq += 1;
                match &mut self.core {
                    Core::Heap(h) => {
                        let pos = s.pos as usize;
                        let s = &mut self.slots[idx as usize];
                        s.time = at;
                        s.seq = seq;
                        h.sift_down(&mut self.slots, pos);
                        let pos = self.slots[idx as usize].pos as usize;
                        h.sift_up(&mut self.slots, pos);
                    }
                    Core::Wheel(w) => {
                        w.remove(&mut self.slots, idx);
                        let s = &mut self.slots[idx as usize];
                        s.time = at;
                        s.seq = seq;
                        w.insert(&mut self.slots, idx);
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed never to fire). Cancelling an
    /// event that already fired, or was already cancelled, returns `false`
    /// and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let idx = id.slot();
        match self.slots.get(idx as usize) {
            Some(s) if s.gen == id.gen() && s.pos != NO_POS => {
                match &mut self.core {
                    Core::Heap(h) => {
                        let pos = s.pos as usize;
                        h.remove_at(&mut self.slots, pos);
                    }
                    Core::Wheel(w) => w.remove(&mut self.slots, idx),
                }
                self.release(idx);
                true
            }
            _ => false,
        }
    }

    /// Timestamp of the next live event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.core {
            Core::Heap(h) => h.heap.first().map(|&i| self.slots[i as usize].time),
            Core::Wheel(w) => w.find_min(&self.slots).map(|i| self.slots[i as usize].time),
        }
    }

    /// `(time, seq)` key of the next live event, if any — the exact pop
    /// order key. Lets a caller holding a reserved-sequence entry (see
    /// [`reserve_seq`](Self::reserve_seq)) decide whether that entry
    /// would pop before everything queued, ties included.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        let idx = match &self.core {
            Core::Heap(h) => h.heap.first().copied(),
            Core::Wheel(w) => w.find_min(&self.slots),
        }?;
        let s = &self.slots[idx as usize];
        Some((s.time, s.seq))
    }

    /// Reserve the next sequence number without scheduling anything.
    ///
    /// The caller owns a phantom entry: pairing the returned number with
    /// [`schedule_at_seq`](Self::schedule_at_seq) later inserts it
    /// exactly as if it had been scheduled at reservation time, and
    /// handling it inline (after [`advance_now`](Self::advance_now))
    /// when [`peek_key`](Self::peek_key) proves it is globally next is
    /// observationally identical to a schedule/pop round trip. This is
    /// the primitive behind the net layer's serialization trains.
    #[inline]
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Insert an entry under a previously reserved sequence number (no
    /// counter bump). The entry pops exactly where a
    /// [`schedule`](Self::schedule) call at reservation time would have
    /// placed it. Returns a live handle, so side tables keyed on
    /// [`EventId`] (pause timers) can track entries that re-enter the
    /// queue through the reserved-sequence path.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    #[inline]
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {now}",
            at = at,
            now = self.now
        );
        self.insert_with_seq(at, seq, payload)
    }

    /// Advance the clock to `at` without popping — the inline-handling
    /// half of the reserved-entry protocol. The caller asserts it is
    /// processing an event at `at` that never entered the queue.
    ///
    /// # Panics
    /// Panics if `at` would rewind the clock or jump past a queued event.
    #[inline]
    pub fn advance_now(&mut self, at: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|t| at <= t),
            "advance_now({at}) would jump past a queued event"
        );
        assert!(
            at >= self.now,
            "causality violation: advancing to {at} but now is {now}",
            at = at,
            now = self.now
        );
        self.now = at;
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = match &mut self.core {
            Core::Heap(h) => {
                let &root = h.heap.first()?;
                h.remove_at(&mut self.slots, 0);
                root
            }
            Core::Wheel(w) => w.pop_min(&mut self.slots)?,
        };
        Some(self.take(idx))
    }

    /// Pop the next live event only if its timestamp is `<= limit`.
    /// Equivalent to `peek_time` followed by a conditional `pop`, but a
    /// single min-search — the hot path of a horizon-bounded run loop.
    /// Returns `None` both on an empty queue and on a next event beyond
    /// `limit`; disambiguate with [`peek_time`](Self::peek_time).
    #[inline]
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let idx = match &mut self.core {
            Core::Heap(h) => {
                let &root = h.heap.first()?;
                if self.slots[root as usize].time > limit {
                    return None;
                }
                h.remove_at(&mut self.slots, 0);
                root
            }
            Core::Wheel(w) => w.pop_min_before(&mut self.slots, limit)?,
        };
        Some(self.take(idx))
    }

    /// Pop the next live event's full `(time, seq)` key and payload,
    /// only if its timestamp is `<= limit`, *deferring the clock*:
    /// `now` (and the wheel cursor) stay put until the caller commits
    /// with [`commit_time`](Self::commit_time). Between the pop and
    /// the commit the caller may run reserved-sequence entries that
    /// order before the popped key, advancing `now` to each with
    /// [`advance_now`](Self::advance_now) — the deferred-pop half of
    /// the net layer's serialization-train protocol. The caller must
    /// not insert anything that orders before the popped key in the
    /// meantime (route such entries around the queue, or re-insert
    /// the popped event with
    /// [`schedule_at_seq`](Self::schedule_at_seq) first).
    #[inline]
    pub fn pop_key_before_deferred(&mut self, limit: SimTime) -> Option<((SimTime, u64), E)> {
        let idx = match &mut self.core {
            Core::Heap(h) => {
                let &root = h.heap.first()?;
                if self.slots[root as usize].time > limit {
                    return None;
                }
                h.remove_at(&mut self.slots, 0);
                root
            }
            Core::Wheel(w) => w.pop_min_before_deferred(&mut self.slots, limit)?,
        };
        let s = &mut self.slots[idx as usize];
        let key = (s.time, s.seq);
        let payload = s.payload.take().expect("live entry has payload");
        self.release(idx);
        Some((key, payload))
    }

    /// Commit the clock to `at` — the closing half of a deferred pop.
    /// Equivalent to [`advance_now`](Self::advance_now) plus the wheel
    /// cursor advance a regular pop would have performed.
    ///
    /// # Panics
    /// Panics if `at` would rewind the clock.
    #[inline]
    pub fn commit_time(&mut self, at: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|t| at <= t),
            "commit_time({at}) would jump past a queued event"
        );
        assert!(
            at >= self.now,
            "causality violation: committing {at} but now is {now}",
            at = at,
            now = self.now
        );
        self.now = at;
        if let Core::Wheel(w) = &mut self.core {
            w.advance_cursor(at);
        }
    }

    /// Detach popped arena slot `idx`: advance `now`, release the slot,
    /// hand back `(time, payload)`.
    #[inline]
    fn take(&mut self, idx: u32) -> (SimTime, E) {
        let s = &mut self.slots[idx as usize];
        let time = s.time;
        let payload = s.payload.take().expect("live entry has payload");
        self.now = time;
        self.release(idx);
        (time, payload)
    }

    /// Drop every pending event (used when tearing a simulation down
    /// early). `now` and the sequence counter are preserved; all backing
    /// capacity is retained.
    pub fn clear(&mut self) {
        for idx in 0..self.slots.len() as u32 {
            if self.slots[idx as usize].pos != NO_POS {
                self.slots[idx as usize].payload = None;
                self.release(idx);
            }
        }
        match &mut self.core {
            Core::Heap(h) => h.heap.clear(),
            Core::Wheel(w) => w.clear_index(),
        }
    }

    /// Rewind to a fresh queue at t = 0 while keeping every allocation:
    /// the slot arena, free list, heap and wheel storage all retain their
    /// capacity, so a run replayed on a reset queue performs no new slot
    /// allocations. Outstanding handles stay stale (generations are not
    /// rewound).
    pub fn reset(&mut self) {
        self.clear();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        if let Core::Wheel(w) = &mut self.core {
            w.reset_cursor();
        }
    }

    /// Size of the backing slot arena (live + free slots). A reused queue
    /// whose peak concurrency fits the arena schedules with zero new slot
    /// allocations; tests assert on this.
    #[doc(hidden)]
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }

    /// Events currently parked in the wheel's overflow tier (0 on the
    /// heap backend). Introspection for tests and benches.
    #[doc(hidden)]
    pub fn overflow_len(&self) -> usize {
        match &self.core {
            Core::Heap(_) => 0,
            Core::Wheel(w) => w.overflow_len(),
        }
    }

    /// The wheel's tick granularity as a power-of-two picosecond shift
    /// (`None` on the heap backend).
    pub fn tick_shift(&self) -> Option<u32> {
        match &self.core {
            Core::Heap(_) => None,
            Core::Wheel(w) => Some(w.tick_shift()),
        }
    }

    /// Sequence number the next [`schedule`](Self::schedule) will use.
    /// Captured by checkpoints so a restored queue keeps numbering where
    /// the original left off.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshot every live event as `(time, seq, payload)`, sorted by
    /// `(time, seq)` — i.e. in pop order. Slot indices and free-list
    /// layout are deliberately *not* captured: pop order is a pure
    /// function of `(time, seq)`, so a queue rebuilt from this snapshot
    /// via [`restore_state`](Self::restore_state) is observationally
    /// identical even though its arena layout differs.
    pub fn live_entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(SimTime, u64, E)> = self
            .slots
            .iter()
            .filter(|s| s.pos != NO_POS)
            .map(|s| {
                (
                    s.time,
                    s.seq,
                    s.payload.clone().expect("live entry has payload"),
                )
            })
            .collect();
        out.sort_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Visit every live entry as `(handle, time, payload)`, in arena
    /// order. Checkpoint restore uses this to rebuild side tables that
    /// key on event handles (which do not survive serialization —
    /// [`restore_state`](Self::restore_state) assigns fresh slots).
    pub fn for_each_live(&self, mut f: impl FnMut(EventId, SimTime, &E)) {
        for (i, s) in self.slots.iter().enumerate() {
            if s.pos != NO_POS {
                let p = s.payload.as_ref().expect("live entry has payload");
                f(EventId::new(i as u32, s.gen), s.time, p);
            }
        }
    }

    /// Rebuild this queue from a [`live_entries`](Self::live_entries)
    /// snapshot: clear everything, park the clock (and wheel cursor) at
    /// `now`, re-insert every entry with its original sequence number,
    /// and continue numbering from `next_seq`. Outstanding [`EventId`]
    /// handles from before the restore are stale, exactly as after
    /// [`reset`](Self::reset).
    ///
    /// # Panics
    /// Panics if any entry is earlier than `now` (a snapshot can only
    /// contain future events).
    pub fn restore_state(&mut self, now: SimTime, next_seq: u64, entries: Vec<(SimTime, u64, E)>) {
        self.reset();
        self.now = now;
        if let Core::Wheel(w) = &mut self.core {
            w.set_cursor(now.as_ps() >> w.tick_shift());
        }
        for (at, seq, payload) in entries {
            assert!(
                at >= self.now,
                "checkpoint entry at {at} predates its snapshot time {now}",
                now = self.now
            );
            self.insert_with_seq(at, seq, payload);
        }
        self.next_seq = next_seq;
    }

    /// [`schedule`](Self::schedule) with an explicit sequence number and
    /// no counter bump — the restore and reserved-entry paths.
    fn insert_with_seq(&mut self, at: SimTime, seq: u64, payload: E) -> EventId {
        let idx = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.time = at;
                s.seq = seq;
                s.payload = Some(payload);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    time: at,
                    seq,
                    gen: 0,
                    pos: NO_POS,
                    prev: NO_POS,
                    next: NO_POS,
                    payload: Some(payload),
                });
                idx
            }
        };
        match &mut self.core {
            Core::Heap(h) => h.insert(&mut self.slots, idx),
            Core::Wheel(w) => w.insert(&mut self.slots, idx),
        }
        EventId::new(idx, self.slots[idx as usize].gen)
    }

    /// Mark `idx` vacant, invalidating outstanding handles to it.
    #[inline]
    fn release(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.pos = NO_POS;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx);
    }
}

/// The indexed 4-ary min-heap over the slot arena: the reference backend.
struct HeapCore {
    /// Heap of slot indices, ordered by the slots' `(time, seq)`.
    heap: Vec<u32>,
}

impl HeapCore {
    fn insert<E>(&mut self, slots: &mut [Slot<E>], idx: u32) {
        let pos = self.heap.len();
        slots[idx as usize].pos = pos as u32;
        self.heap.push(idx);
        self.sift_up(slots, pos);
    }

    /// `(time, seq)` min-order between two slot indices.
    #[inline]
    fn before<E>(slots: &[Slot<E>], a: u32, b: u32) -> bool {
        let (sa, sb) = (&slots[a as usize], &slots[b as usize]);
        (sa.time, sa.seq) < (sb.time, sb.seq)
    }

    /// Remove the heap entry at `pos`, preserving the heap invariant.
    fn remove_at<E>(&mut self, slots: &mut [Slot<E>], pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let removed = self.heap.pop().expect("remove_at on empty heap");
        slots[removed as usize].pos = NO_POS;
        if pos < self.heap.len() {
            slots[self.heap[pos] as usize].pos = pos as u32;
            // The filler came from the heap's tail but an arbitrary
            // subtree; it may need to move either way. If sift_down moved
            // a former descendant up into `pos`, that element already
            // satisfies the parent bound, so the follow-up sift_up is a
            // single no-op comparison.
            self.sift_down(slots, pos);
            self.sift_up(slots, pos);
        }
    }

    fn sift_up<E>(&mut self, slots: &mut [Slot<E>], mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if Self::before(slots, self.heap[pos], self.heap[parent]) {
                self.swap_heap(slots, pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down<E>(&mut self, slots: &mut [Slot<E>], mut pos: usize) {
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(self.heap.len());
            for c in first_child + 1..end {
                if Self::before(slots, self.heap[c], self.heap[best]) {
                    best = c;
                }
            }
            if Self::before(slots, self.heap[best], self.heap[pos]) {
                self.swap_heap(slots, pos, best);
                pos = best;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn swap_heap<E>(&mut self, slots: &mut [Slot<E>], a: usize, b: usize) {
        self.heap.swap(a, b);
        slots[self.heap[a] as usize].pos = a as u32;
        slots[self.heap[b] as usize].pos = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Run `f` against a fresh queue on each backend — every invariant
    /// below must hold regardless of the index structure.
    fn on_each_backend(f: impl Fn(EventQueue<&'static str>)) {
        f(EventQueue::with_backend(Backend::Heap));
        f(EventQueue::with_backend(Backend::Wheel));
    }

    fn on_each_backend_u64(f: impl Fn(EventQueue<u64>)) {
        f(EventQueue::with_backend(Backend::Heap));
        f(EventQueue::with_backend(Backend::Wheel));
    }

    /// `pop_before` must be observationally identical to peek-then-pop:
    /// same events in the same order under a rising limit, refusals
    /// leaving the queue intact.
    #[test]
    fn pop_before_matches_peek_then_pop() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut fused = EventQueue::with_backend(backend);
            let mut split = EventQueue::with_backend(backend);
            let mut state = 0x2545_f491_4f6c_dd1du64;
            let mut at = 0u64;
            for i in 0..500u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                at += state % 50_000; // mixed deltas, frequent ties at 0
                fused.schedule(SimTime::from_ps(at), i);
                split.schedule(SimTime::from_ps(at), i);
            }
            let mut limit = SimTime::ZERO;
            while split.peek_time().is_some() {
                loop {
                    let expect = match split.peek_time() {
                        Some(t) if t <= limit => split.pop(),
                        _ => None,
                    };
                    let got = fused.pop_before(limit);
                    assert_eq!(got, expect, "{backend:?} diverged at limit {limit}");
                    if got.is_none() {
                        break;
                    }
                }
                limit += SimDuration::from_ns(37);
            }
            assert_eq!(fused.pop_before(SimTime::MAX), None);
        }
    }

    #[test]
    fn pops_in_time_order() {
        on_each_backend(|mut q| {
            q.schedule(SimTime::from_ns(30), "c");
            q.schedule(SimTime::from_ns(10), "a");
            q.schedule(SimTime::from_ns(20), "b");
            assert_eq!(q.pop().unwrap(), (SimTime::from_ns(10), "a"));
            assert_eq!(q.pop().unwrap(), (SimTime::from_ns(20), "b"));
            assert_eq!(q.pop().unwrap(), (SimTime::from_ns(30), "c"));
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn same_time_fifo_order() {
        on_each_backend_u64(|mut q| {
            let t = SimTime::from_ns(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i, "FIFO tie-break violated");
            }
        });
    }

    #[test]
    fn now_advances_with_pops() {
        on_each_backend(|mut q| {
            q.schedule(SimTime::from_us(7), "e");
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_us(7));
        });
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn cancellation_prevents_firing() {
        on_each_backend(|mut q| {
            let a = q.schedule(SimTime::from_ns(1), "a");
            let b = q.schedule(SimTime::from_ns(2), "b");
            assert_eq!(q.len(), 2);
            assert!(q.cancel(a));
            assert!(!q.cancel(a), "double-cancel reports false");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().unwrap().1, "b");
            assert!(!q.cancel(b) || q.is_empty());
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        on_each_backend(|mut q| {
            let a = q.schedule(SimTime::from_ns(1), "a");
            q.schedule(SimTime::from_ns(9), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        });
    }

    #[test]
    fn clear_empties_queue() {
        on_each_backend_u64(|mut q| {
            q.schedule(SimTime::from_ns(1), 1);
            q.schedule(SimTime::from_ns(2), 2);
            q.clear();
            assert!(q.is_empty());
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        on_each_backend_u64(|mut q| {
            q.schedule(SimTime::from_ns(10), 10);
            q.schedule(SimTime::from_ns(5), 5);
            assert_eq!(q.pop().unwrap().1, 5);
            // Schedule relative to now.
            let now = q.now();
            q.schedule(now + SimDuration::from_ns(2), 7);
            assert_eq!(q.pop().unwrap().1, 7);
            assert_eq!(q.pop().unwrap().1, 10);
        });
    }

    #[test]
    fn stale_handle_rejected_after_slot_reuse() {
        on_each_backend(|mut q| {
            let a = q.schedule(SimTime::from_ns(1), "a");
            assert!(q.cancel(a));
            // Reuses a's slot; the old handle must not be able to cancel it.
            let b = q.schedule(SimTime::from_ns(2), "b");
            assert!(!q.cancel(a));
            assert_eq!(q.pop().unwrap().1, "b");
            assert!(!q.cancel(b), "fired handle is stale");
        });
    }

    #[test]
    fn stale_handle_rejected_after_clear() {
        on_each_backend_u64(|mut q| {
            let a = q.schedule(SimTime::from_ns(1), 1);
            q.clear();
            assert!(!q.cancel(a));
            q.schedule(SimTime::from_ns(2), 2);
            assert!(!q.cancel(a), "pre-clear handle must stay stale");
        });
    }

    /// Regression for the cancelled-entry leak: with lazy cancellation the
    /// backing index retained tombstones until they surfaced, so a
    /// schedule/cancel churn at a far-future timestamp grew storage without
    /// bound. Eager removal keeps both the index and the slot arena at the
    /// live-event footprint.
    #[test]
    fn cancelled_entries_are_reclaimed_not_leaked() {
        on_each_backend(|mut q| {
            let keep = q.schedule(SimTime::from_ns(1_000_000), "keep");
            for _ in 0..10_000 {
                let id = q.schedule(SimTime::from_ns(999_999), "churn");
                assert!(q.cancel(id));
            }
            assert_eq!(q.len(), 1, "index retains cancelled tombstones");
            assert!(
                q.arena_len() <= 2,
                "slot arena grew to {} despite churn reuse",
                q.arena_len()
            );
            assert!(q.cancel(keep));
            assert!(q.is_empty());
        });
    }

    /// Reuse across runs: after `reset`, an identical workload must touch
    /// only recycled slots — zero arena growth — and behave exactly like a
    /// fresh queue.
    #[test]
    fn reset_reuses_arena_with_zero_new_slot_allocations() {
        let run = |q: &mut EventQueue<u64>| -> Vec<(u64, u64)> {
            let mut ids = Vec::new();
            for i in 0..500u64 {
                let t = SimTime::from_ns((i * 37) % 900 + 1);
                ids.push(q.schedule(t, i));
            }
            for id in ids.iter().step_by(3) {
                assert!(q.cancel(*id));
            }
            let mut out = Vec::new();
            while let Some((t, v)) = q.pop() {
                out.push((t.as_ns(), v));
            }
            out
        };
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            let first = run(&mut q);
            let arena_after_first = q.arena_len();
            q.reset();
            assert_eq!(q.now(), SimTime::ZERO);
            assert!(q.is_empty());
            let second = run(&mut q);
            assert_eq!(first, second, "reset queue diverged from fresh run");
            assert_eq!(
                q.arena_len(),
                arena_after_first,
                "second run on a reset queue allocated new slots"
            );
        }
    }

    /// Wheel edge case: events scheduled exactly at the current tick (and
    /// at the current time) fire immediately and in FIFO order.
    #[test]
    fn wheel_schedule_at_current_tick() {
        let mut q: EventQueue<u64> = EventQueue::with_backend(Backend::Wheel);
        q.schedule(SimTime::from_ns(100), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        let now = q.now();
        q.schedule(now, 1); // same ps as `now`
        q.schedule(now + SimDuration::from_ps(1), 2); // same tick, later ps
        q.schedule(now, 3); // FIFO with 1
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }

    /// Wheel edge case: cancelling the last event of a slot must clear the
    /// occupancy bit, or peek/pop would spin on an empty bucket.
    #[test]
    fn wheel_cancel_last_event_in_slot() {
        let mut q: EventQueue<u64> = EventQueue::with_backend(Backend::Wheel);
        let lone = q.schedule(SimTime::from_ns(50), 1);
        q.schedule(SimTime::from_us(3), 2); // different slot, different level
        assert!(q.cancel(lone));
        assert_eq!(q.peek_time(), Some(SimTime::from_us(3)));
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }

    /// Wheel edge case: far-future events start in the overflow tier and
    /// migrate into the wheels as the cursor turns, without reordering.
    #[test]
    fn wheel_overflow_migration_preserves_order() {
        let mut q: EventQueue<u64> = EventQueue::with_backend(Backend::Wheel);
        // Horizon with the default 2^10 ps tick is 2^34 ps ≈ 17.2 ms.
        let far: Vec<SimTime> = (0..50)
            .map(|i| SimTime::from_us(21_000) + SimDuration::from_ns(i * 13))
            .collect();
        for (i, &t) in far.iter().enumerate() {
            q.schedule(t, 1000 + i as u64);
        }
        assert!(q.overflow_len() > 0, "far events must start in overflow");
        // Near events pop first; popping walks the cursor toward the
        // overflow boundary and drags the far events into the wheels.
        for i in 0..10u64 {
            q.schedule(SimTime::from_ms(2 * (i + 1)), i);
        }
        let mut seen = Vec::new();
        while let Some((_, v)) = q.pop() {
            seen.push(v);
        }
        let want: Vec<u64> = (0..10).chain(1000..1050).collect();
        assert_eq!(
            seen, want,
            "migration across the overflow boundary reordered"
        );
        assert_eq!(q.overflow_len(), 0);
    }

    /// Wheel edge case: an event exactly at the horizon boundary
    /// (`2^24` ticks ahead) goes to overflow, one tick inside stays in the
    /// wheels, and both pop in time order.
    #[test]
    fn wheel_horizon_boundary_events() {
        let mut q: EventQueue<u64> = EventQueue::with_backend(Backend::Wheel);
        let tick_ps = 1u64 << q.tick_shift().unwrap();
        let horizon = SimTime::from_ps(tick_ps << 24);
        q.schedule(horizon, 2);
        q.schedule(SimTime::from_ps(horizon.as_ps() - tick_ps), 1);
        q.schedule(SimTime::from_ps(horizon.as_ps() + tick_ps), 3);
        assert_eq!(q.overflow_len(), 2, "boundary and beyond go to overflow");
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    /// `SimTime::MAX` is a legal "never" timestamp; it must park in the
    /// overflow tier and still be cancellable.
    #[test]
    fn wheel_handles_sentinel_max_time() {
        let mut q: EventQueue<u64> = EventQueue::with_backend(Backend::Wheel);
        let never = q.schedule(SimTime::MAX, 99);
        q.schedule(SimTime::from_ns(5), 1);
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.cancel(never));
        assert!(q.is_empty());
    }

    #[test]
    fn env_override_selects_backend() {
        // Don't mutate the process environment (tests run in parallel);
        // just check the explicit constructors and default.
        assert_eq!(
            EventQueue::<u64>::with_backend(Backend::Heap).backend(),
            Backend::Heap
        );
        assert_eq!(
            EventQueue::<u64>::with_backend(Backend::Wheel).backend(),
            Backend::Wheel
        );
        if std::env::var("PFCSIM_SCHED").is_err() {
            assert_eq!(EventQueue::<u64>::new().backend(), Backend::Wheel);
        }
    }

    /// Randomised (but seeded, self-contained) interleaving of
    /// schedule/cancel/pop against a sorted-vec reference model, on both
    /// backends.
    #[test]
    fn interleaving_matches_reference_model() {
        for backend in [Backend::Heap, Backend::Wheel] {
            // xorshift64* — deterministic, no external deps.
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut rng = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545f4914f6cdd1d)
            };
            let mut q = EventQueue::with_backend(backend);
            let mut live: Vec<(u64, u64, EventId)> = Vec::new(); // (time_ns, tag, id)
            let mut popped: Vec<u64> = Vec::new();
            let mut expected: Vec<u64> = Vec::new();
            let mut tag = 0u64;
            for _ in 0..5_000 {
                match rng() % 10 {
                    0..=4 => {
                        let t = q.now().as_ns() + rng() % 50;
                        let id = q.schedule(SimTime::from_ns(t), tag);
                        live.push((t, tag, id));
                        tag += 1;
                    }
                    5..=6 if !live.is_empty() => {
                        let victim = (rng() % live.len() as u64) as usize;
                        let (_, _, id) = live.swap_remove(victim);
                        assert!(q.cancel(id));
                    }
                    _ => {
                        if let Some((t, v)) = q.pop() {
                            popped.push(v);
                            // Reference: earliest (time, tag) among live.
                            let best = live
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(bt, btag, _))| (bt, btag))
                                .map(|(i, _)| i)
                                .expect("model had no live events");
                            let (bt, btag, _) = live.swap_remove(best);
                            assert_eq!((t.as_ns(), v), (bt, btag));
                            expected.push(btag);
                        }
                    }
                }
            }
            assert_eq!(popped, expected);
            assert_eq!(q.len(), live.len());
        }
    }

    /// Checkpoint/restore parity: snapshotting mid-run and rebuilding a
    /// fresh queue (on either backend, regardless of which backend took
    /// the snapshot) must reproduce the exact remaining pop stream, and
    /// new schedules must continue the sequence numbering seamlessly.
    #[test]
    fn restore_reproduces_pop_stream_across_backends() {
        let build = |backend| {
            let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
            let mut state = 0x1234_5678_9abc_def0u64;
            let mut at = 0u64;
            for i in 0..400u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                at += state % 40_000;
                q.schedule(SimTime::from_ps(at), i);
            }
            // Far-future events exercise the wheel overflow tier.
            for i in 0..20u64 {
                q.schedule(SimTime::from_us(30_000 + i), 1000 + i);
            }
            for _ in 0..150 {
                q.pop();
            }
            q
        };
        for src in [Backend::Heap, Backend::Wheel] {
            let original = build(src);
            let snapshot = original.live_entries();
            let (now, next_seq) = (original.now(), original.next_seq());
            for dst in [Backend::Heap, Backend::Wheel] {
                let mut restored: EventQueue<u64> =
                    EventQueue::with_backend_and_tick_shift(dst, DEFAULT_TICK_SHIFT);
                restored.restore_state(now, next_seq, snapshot.clone());
                assert_eq!(restored.now(), now);
                assert_eq!(restored.len(), original.len());
                // Rebuild the original (build() already drains to the
                // snapshot point) and compare tails with interleaved
                // post-restore scheduling.
                let mut a = build(src);
                let extra = a.now() + SimDuration::from_ns(3);
                a.schedule(extra, 9999);
                restored.schedule(extra, 9999);
                loop {
                    let (x, y) = (a.pop(), restored.pop());
                    assert_eq!(x, y, "{src:?}->{dst:?} diverged after restore");
                    if x.is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// `reschedule` must be observationally identical to cancel +
    /// schedule: same pop stream under a randomized workload of moves in
    /// both directions (later *and* earlier deadlines), on both backends
    /// and cross-checked between them.
    #[test]
    fn reschedule_matches_cancel_plus_schedule() {
        // The cancel+schedule reference needs the payload back, which
        // `cancel` does not return — so the workload carries the payload
        // alongside the handle.
        let run = |backend, use_reschedule: bool| -> Vec<(u64, u64)> {
            let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
            let mut state = 0xdead_beef_cafe_f00du64;
            let mut rng = move |m: u64| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % m
            };
            let mut live: Vec<(EventId, u64)> = Vec::new();
            let mut out = Vec::new();
            for i in 0..4_000u64 {
                match rng(10) {
                    0..=3 => {
                        let at = q.now() + SimDuration::from_ns(1 + rng(70_000));
                        live.push((q.schedule(at, i), i));
                    }
                    4..=6 if !live.is_empty() => {
                        let ix = rng(live.len() as u64) as usize;
                        let at = q.now() + SimDuration::from_ns(1 + rng(70_000));
                        let (id, payload) = live[ix];
                        let moved = if use_reschedule {
                            q.reschedule(id, at)
                        } else if q.cancel(id) {
                            live[ix].0 = q.schedule(at, payload);
                            true
                        } else {
                            false
                        };
                        if !moved {
                            live.swap_remove(ix);
                        }
                    }
                    _ => {
                        if let Some((t, v)) = q.pop() {
                            out.push((t.as_ns(), v));
                            let pos = live.iter().position(|&(_, p)| p == v).unwrap();
                            live.swap_remove(pos);
                        }
                    }
                }
            }
            while let Some((t, v)) = q.pop() {
                out.push((t.as_ns(), v));
            }
            out
        };
        let reference = run(Backend::Heap, false);
        for backend in [Backend::Heap, Backend::Wheel] {
            assert_eq!(
                run(backend, true),
                reference,
                "{backend:?} reschedule diverged from cancel+schedule"
            );
            assert_eq!(run(backend, false), reference);
        }
    }

    /// A rescheduled handle must survive repeated moves (including into
    /// the wheel overflow tier and back) and still cancel cleanly.
    #[test]
    fn reschedule_keeps_handle_valid() {
        on_each_backend_u64(|mut q| {
            let id = q.schedule(SimTime::from_ns(100), 7);
            assert!(q.reschedule(id, SimTime::from_us(40_000))); // overflow range
            assert!(q.reschedule(id, SimTime::from_ns(50))); // back near now
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((SimTime::from_ns(50), 7)));
            // Fired: the handle is dead for both verbs.
            assert!(!q.reschedule(id, SimTime::from_ns(60)));
            assert!(!q.cancel(id));
        });
    }

    /// Rescheduling consumes a sequence number, so a moved event ties
    /// *after* anything scheduled between the original schedule and the
    /// move — exactly like cancel + schedule.
    #[test]
    fn reschedule_ties_like_a_fresh_schedule() {
        on_each_backend_u64(|mut q| {
            let t = SimTime::from_ns(500);
            let id = q.schedule(t, 1);
            q.schedule(t, 2);
            assert!(q.reschedule(id, t)); // same instant, new seq
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
            assert_eq!(order, [2, 1]);
        });
    }

    /// The reserved-sequence protocol (`reserve_seq` + `schedule_at_seq`
    /// / inline handling with `advance_now`) must reproduce the exact
    /// pop stream of plain scheduling: a parked entry that `peek_key`
    /// proves globally next is handled inline; otherwise it is flushed
    /// into the queue under its reserved number.
    #[test]
    fn reserved_seq_inline_matches_schedule_pop() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut plain: EventQueue<u64> = EventQueue::with_backend(backend);
            let mut train: EventQueue<u64> = EventQueue::with_backend(backend);
            let mut state = 0x0123_4567_89ab_cdefu64;
            let mut rng = move |m: u64| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % m
            };
            let mut out_plain = Vec::new();
            let mut out_train = Vec::new();
            let mut parked: Option<(SimTime, u64, u64)> = None;
            for i in 0..3_000u64 {
                let deltas = [0, 1, 3, 40, 900, 20_000];
                let at_off = deltas[rng(deltas.len() as u64) as usize];
                match rng(3) {
                    0 => {
                        let at = plain.now() + SimDuration::from_ns(at_off);
                        plain.schedule(at, i);
                        // Train side: park it if the slot is free.
                        let at = train.now() + SimDuration::from_ns(at_off);
                        if parked.is_none() {
                            parked = Some((at, train.reserve_seq(), i));
                        } else {
                            train.schedule(at, i);
                        }
                    }
                    _ => {
                        if let Some((t, v)) = plain.pop() {
                            out_plain.push((t.as_ns(), v));
                        }
                        // Train side: the parked entry pops first iff its
                        // (time, seq) beats the queue head.
                        match parked.take() {
                            Some((at, seq, v))
                                if train.peek_key().is_none_or(|k| (at, seq) < k) =>
                            {
                                train.advance_now(at);
                                out_train.push((at.as_ns(), v));
                            }
                            Some((at, seq, v)) => {
                                train.schedule_at_seq(at, seq, v);
                                if let Some((t, v)) = train.pop() {
                                    out_train.push((t.as_ns(), v));
                                }
                            }
                            None => {
                                if let Some((t, v)) = train.pop() {
                                    out_train.push((t.as_ns(), v));
                                }
                            }
                        }
                    }
                }
            }
            if let Some((at, seq, v)) = parked.take() {
                train.schedule_at_seq(at, seq, v);
            }
            while let Some((t, v)) = plain.pop() {
                out_plain.push((t.as_ns(), v));
            }
            while let Some((t, v)) = train.pop() {
                out_train.push((t.as_ns(), v));
            }
            assert_eq!(out_plain, out_train, "{backend:?} inline protocol diverged");
            assert_eq!(plain.next_seq(), train.next_seq());
        }
    }

    /// An entry earlier than the restored `now` is a corrupt snapshot and
    /// must be rejected loudly, not silently reordered.
    #[test]
    #[should_panic(expected = "predates its snapshot time")]
    fn restore_rejects_entries_before_now() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.restore_state(
            SimTime::from_us(10),
            1,
            vec![(SimTime::from_us(1), 0, 7u64)],
        );
    }

    /// `schedule_at_seq` returns a live handle: cancellable, reschedulable,
    /// and distinct from stale handles to the reused slot.
    #[test]
    fn schedule_at_seq_returns_live_handle() {
        on_each_backend_u64(|mut q| {
            let seq = q.reserve_seq();
            let id = q.schedule_at_seq(SimTime::from_ns(5), seq, 5);
            assert!(q.cancel(id));
            assert!(!q.cancel(id), "handle must go stale after cancel");
            // Slot reuse must not revive the old handle.
            let seq2 = q.reserve_seq();
            let id2 = q.schedule_at_seq(SimTime::from_ns(7), seq2, 7);
            assert!(!q.cancel(id));
            assert!(q.reschedule(id2, SimTime::from_ns(3)));
            assert_eq!(q.pop(), Some((SimTime::from_ns(3), 7)));
        });
    }
}
