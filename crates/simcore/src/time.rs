//! Simulated time in integer picoseconds.
//!
//! All simulator arithmetic is integral so that every run is exactly
//! reproducible. Picoseconds are fine enough that common datacenter rates
//! divide evenly: one byte at 40 Gbps serializes in exactly 200 ps, at
//! 100 Gbps in exactly 80 ps, at 10 Gbps in 800 ps.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant on the simulated clock, in picoseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    /// Value in microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }
    /// Value in milliseconds (truncating).
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0 / PS_PER_MS
    }
    /// Value in (fractional) seconds — for reporting only, never simulation logic.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (`None` on overflow).
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    /// Value in microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }
    /// Value in (fractional) seconds — for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// True iff this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Integer division of two spans (how many `other` fit in `self`).
    #[inline]
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: simulation horizon exceeds u64 picoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ps(self.0, f)
    }
}

/// Human-friendly rendering with an auto-selected unit.
fn format_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps >= PS_PER_SEC {
        write!(f, "{:.3}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        write!(f, "{}ps", ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(5).as_ns(), 5_000);
        assert_eq!(SimTime::from_ms(5).as_us(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_ms(), 2_000);
        assert_eq!(SimDuration::from_ns(7).as_ps(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_SEC);
    }

    #[test]
    fn arithmetic_time_duration() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d).as_us(), 13);
        assert_eq!((t - d).as_us(), 7);
        assert_eq!(((t + d) - t).as_us(), 3);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.as_us(), 13);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_ns(100);
        let b = SimDuration::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!(a.saturating_mul(3).as_ns(), 300);
        assert_eq!(a.div_duration(b), 2);
        let mut c = a;
        c -= b;
        assert_eq!(c.as_ns(), 60);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(30);
        assert_eq!(late.saturating_since(early).as_ns(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimDuration::from_ns(2);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_ps(1) > SimDuration::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", SimTime::from_ps(512)), "512ps");
        assert_eq!(format!("{}", SimTime::from_ns(1)), "1.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_ps(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_ps(7)),
            Some(SimTime::from_ps(7))
        );
    }
}
