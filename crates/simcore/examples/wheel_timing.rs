use pfcsim_simcore::event::{Backend, EventQueue};
use pfcsim_simcore::rng::SimRng;
use pfcsim_simcore::time::{SimDuration, SimTime};
use std::time::Instant;

fn main() {
    // Fabric-like steady state: ~100 in-flight events, each rescheduled
    // ~1.2us ahead (serialization 200ns + propagation 1us), peek+pop loop.
    for backend in [Backend::Wheel, Backend::Heap] {
        for &(live, jitter) in &[
            (16usize, 1u64),
            (100, 1),
            (400, 1),
            (16, 0),
            (100, 0),
            (400, 0),
        ] {
            let mut q = EventQueue::with_backend_and_tick_shift(backend, 10);
            let mut rng = SimRng::new(3);
            for i in 0..live as u64 {
                q.schedule(SimTime::from_ns(1200 + jitter * rng.gen_range(200)), i);
            }
            let n = 2_000_000u64;
            let t0 = Instant::now();
            let mut sum = 0u64;
            for _ in 0..n {
                let _t = q.peek_time().unwrap();
                let (at, v) = q.pop().unwrap();
                sum = sum.wrapping_add(v);
                q.schedule(
                    at + SimDuration::from_ns(1200 + jitter * rng.gen_range(200)),
                    v,
                );
            }
            let el = t0.elapsed().as_secs_f64();
            println!(
                "{:?} live={:4} jitter={}  {:.1} ns/event (sum {})",
                backend,
                live,
                jitter,
                el / n as f64 * 1e9,
                sum % 10
            );
        }
    }
}
