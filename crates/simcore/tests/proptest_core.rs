//! Property tests for the simulation core: the event queue against a
//! reference model, unit arithmetic, and recorder invariants.

use proptest::prelude::*;

use pfcsim_simcore::event::{Backend, EventQueue};
use pfcsim_simcore::series::{Histogram, IntervalLog, TimeSeries};
use pfcsim_simcore::time::{SimDuration, SimTime};
use pfcsim_simcore::units::{BitRate, Bytes};

proptest! {
    /// The queue pops every scheduled event exactly once, in (time,
    /// schedule-order) order — checked against a stable sort.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves schedule order
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_ns(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Cancellation removes exactly the cancelled subset.
    #[test]
    fn event_queue_cancellation(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_ns(t), i))
            .collect();
        let mut kept: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                prop_assert!(!q.cancel(*id), "double cancel is false");
            } else {
                kept.push(i);
            }
        }
        prop_assert_eq!(q.len(), kept.len());
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            got.push(i);
        }
        got.sort_unstable();
        prop_assert_eq!(got, kept);
    }

    /// serialization_time is exact-or-rounded-up and bytes_in inverts it.
    #[test]
    fn rate_arithmetic_roundtrip(bps in 1_000_000u64..400_000_000_000, bytes in 1u64..100_000) {
        let rate = BitRate::from_bps(bps);
        let size = Bytes::new(bytes);
        let t = rate.serialization_time(size);
        // Exact-or-up: transmitting for t at `rate` moves at least `size`.
        let moved = rate.bytes_in(t);
        prop_assert!(moved >= size.saturating_sub(Bytes::new(1)));
        // Never over by more than one byte's time.
        let t_minus = SimDuration::from_ps(t.as_ps().saturating_sub(1));
        prop_assert!(rate.bytes_in(t_minus) <= size);
    }

    /// Time arithmetic is associative with durations and ordered.
    #[test]
    fn time_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64, c in 0u64..u32::MAX as u64) {
        let t = SimTime::from_ps(a);
        let d1 = SimDuration::from_ps(b);
        let d2 = SimDuration::from_ps(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert!((t + d1) >= t);
        prop_assert_eq!((t + d1) - t, d1);
    }

    /// TimeSeries stats are consistent with the raw samples.
    #[test]
    fn time_series_stats_consistent(vals in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut s = TimeSeries::new();
        for (i, &v) in vals.iter().enumerate() {
            s.push(SimTime::from_ns(i as u64), v);
        }
        prop_assert_eq!(s.max(), *vals.iter().max().unwrap());
        prop_assert_eq!(s.min(), *vals.iter().min().unwrap());
        let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
    }

    /// Interval logs measure what they cover.
    #[test]
    fn interval_log_duration(spans in prop::collection::vec((0u64..1000, 1u64..1000), 0..20)) {
        let mut log = IntervalLog::new();
        let mut cursor = 0u64;
        let mut expected = 0u64;
        for &(gap, len) in &spans {
            let start = cursor + gap;
            let end = start + len;
            log.open(SimTime::from_ns(start));
            log.close(SimTime::from_ns(end));
            expected += len;
            cursor = end;
        }
        let total = log.total_duration(SimTime::from_ns(cursor));
        prop_assert_eq!(total.as_ns(), expected);
        prop_assert_eq!(log.count(), spans.len());
    }

    /// The indexed-heap queue is observationally equivalent to the
    /// previous implementation — a `BinaryHeap` with lazy (tombstone)
    /// cancellation, reproduced below as `model` — under random
    /// schedule/cancel/pop interleavings: same pop sequence, same
    /// cancel return values, same len.
    #[test]
    fn event_queue_matches_binary_heap_model(
        ops in prop::collection::vec((0u64..10, 0u64..50), 0..400),
    ) {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashSet};

        struct Model {
            heap: BinaryHeap<Reverse<(u64, u64, u64)>>, // (time, seq, tag)
            pending: HashSet<u64>,
            next_seq: u64,
            now: u64,
        }
        impl Model {
            fn schedule(&mut self, at: u64, tag: u64) -> u64 {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(Reverse((at, seq, tag)));
                self.pending.insert(seq);
                seq
            }
            fn cancel(&mut self, seq: u64) -> bool {
                self.pending.remove(&seq)
            }
            fn pop(&mut self) -> Option<(u64, u64)> {
                while let Some(Reverse((t, seq, tag))) = self.heap.pop() {
                    if self.pending.remove(&seq) {
                        self.now = t;
                        return Some((t, tag));
                    }
                }
                None
            }
        }

        let mut q = EventQueue::new();
        let mut model = Model {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: 0,
        };
        // Parallel vectors: handle in the real queue, seq in the model.
        let mut live: Vec<(pfcsim_simcore::event::EventId, u64)> = Vec::new();
        let mut tag = 0u64;
        for &(op, arg) in &ops {
            match op {
                0..=4 => {
                    let at = model.now + arg;
                    let id = q.schedule(SimTime::from_ns(at), tag);
                    let seq = model.schedule(at, tag);
                    live.push((id, seq));
                    tag += 1;
                }
                5..=6 => {
                    if !live.is_empty() {
                        let victim = (arg as usize) % live.len();
                        let (id, seq) = live.swap_remove(victim);
                        prop_assert_eq!(q.cancel(id), model.cancel(seq));
                        // A handle is single-use in both implementations.
                        prop_assert!(!q.cancel(id));
                    }
                }
                _ => {
                    // `live` may still reference the entry that fires here;
                    // a later cancel on it must return false in both
                    // implementations, which the cancel arm asserts.
                    let got = q.pop().map(|(t, v)| (t.as_ns(), v));
                    prop_assert_eq!(got, model.pop());
                }
            }
            prop_assert_eq!(q.len(), model.pending.len());
            prop_assert_eq!(q.is_empty(), model.pending.is_empty());
            prop_assert_eq!(q.peek_time().map(|t| t.as_ns()),
                            model.heap.iter().map(|&Reverse((t, s, _))| (t, s))
                                 .filter(|&(_, s)| model.pending.contains(&s))
                                 .min().map(|(t, _)| t));
        }
        // Drain both to the end: identical tails.
        loop {
            let got = q.pop().map(|(t, v)| (t.as_ns(), v));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// The timing wheel against the 4-ary heap as the executable model:
    /// identical random schedule/cancel/pop interleavings must produce
    /// exactly the same `(time, seq)` pop order (FIFO within a tick),
    /// the same cancel return values, the same peeked times and the same
    /// live counts. Time deltas span sub-tick spacing, every wheel level
    /// and the overflow horizon (2^34 ps at the default tick), so slot
    /// collisions, cascades and overflow migration are all exercised.
    #[test]
    fn wheel_matches_heap_model(
        ops in prop::collection::vec((0u64..10, 0u64..64, 0u32..37), 0..400),
    ) {
        let mut wheel = EventQueue::with_backend(Backend::Wheel);
        let mut heap = EventQueue::with_backend(Backend::Heap);
        // Parallel handle vectors; indices stay aligned because both
        // queues see the identical operation sequence.
        let mut live: Vec<(pfcsim_simcore::event::EventId, pfcsim_simcore::event::EventId)> =
            Vec::new();
        let mut tag = 0u64;
        for &(op, mantissa, shift) in &ops {
            match op {
                0..=4 => {
                    // Delta = mantissa << shift: dense at small scales,
                    // sparse out past the overflow horizon.
                    let at = wheel.now() + pfcsim_simcore::time::SimDuration::from_ps(
                        mantissa << (shift % 37),
                    );
                    let wid = wheel.schedule(at, tag);
                    let hid = heap.schedule(at, tag);
                    live.push((wid, hid));
                    tag += 1;
                }
                5..=6 => {
                    if !live.is_empty() {
                        let victim = (mantissa as usize) % live.len();
                        let (wid, hid) = live.swap_remove(victim);
                        prop_assert_eq!(wheel.cancel(wid), heap.cancel(hid));
                    }
                }
                _ => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let got = wheel.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain both to the end: identical tails.
        loop {
            let got = wheel.pop();
            let want = heap.pop();
            let done = want.is_none();
            prop_assert_eq!(got, want);
            if done {
                break;
            }
        }
    }

    /// Histogram totals and quantile ordering.
    #[test]
    fn histogram_invariants(vals in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut h = Histogram::new(100, 50);
        for &v in &vals {
            h.record(v);
        }
        prop_assert_eq!(h.total(), vals.len() as u64);
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q10 <= q50 && q50 <= q99);
    }
}
