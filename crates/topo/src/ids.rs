//! Typed identifiers for topology elements.
//!
//! Separate newtypes prevent the classic simulator bug of indexing the
//! wrong table with the right integer.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A node (host or switch) in the topology. Dense, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A full-duplex link. Dense, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A port number local to one node. Port `p` of node `n` attaches exactly
/// one link end. Dense, 0-based, in attachment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortNo(pub u16);

/// One direction of a full-duplex link: the channel carrying traffic from
/// `from` to `to`. This is the unit that PFC pauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Channel {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

/// A flow identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// An 802.1p priority / PFC class, 0–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(pub u8);

impl Priority {
    /// Number of PFC classes defined by 802.1Qbb.
    pub const COUNT: usize = 8;
    /// The default lossless class used throughout the experiments.
    pub const DEFAULT: Priority = Priority(3);

    /// Construct, panicking if out of the 0–7 range.
    pub fn new(p: u8) -> Self {
        assert!(p < 8, "priority must be 0..8, got {p}");
        Priority(p)
    }

    /// Index form for dense per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}
impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bounds() {
        assert_eq!(Priority::new(0).index(), 0);
        assert_eq!(Priority::new(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "priority must be")]
    fn priority_out_of_range_panics() {
        Priority::new(8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(1).to_string(), "l1");
        assert_eq!(PortNo(2).to_string(), "p2");
        assert_eq!(FlowId(9).to_string(), "f9");
        assert_eq!(Priority(3).to_string(), "prio3");
        assert_eq!(
            Channel {
                from: NodeId(1),
                to: NodeId(2)
            }
            .to_string(),
            "n1->n2"
        );
    }
}
