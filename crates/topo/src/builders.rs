//! Standard datacenter topologies.
//!
//! Every builder returns a [`Built`] bundle: the graph plus host/switch
//! handles in a documented order, so experiments can address "the host on
//! switch B" without string lookups.
//!
//! The paper's scenarios map to [`two_switch_loop`] (Case 1, Fig. 2),
//! [`square`] (Cases 2–3, Figs. 3–5) and [`ring`] (Fig. 1). The wider
//! catalogue (fat-tree, leaf-spine, BCube, Jellyfish, torus) backs the §2
//! discussion — deadlock-free routing "largely limits the choice of
//! topology" — and the baseline-cost experiments.

use pfcsim_simcore::rng::SimRng;
use pfcsim_simcore::time::SimDuration;
use pfcsim_simcore::units::BitRate;

use crate::graph::Topology;
use crate::ids::NodeId;

/// Link parameters shared by a builder invocation.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Line rate per direction.
    pub rate: BitRate,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

impl Default for LinkSpec {
    /// The paper's setup: 40 Gbps links; 1 µs propagation (typical DC).
    fn default() -> Self {
        LinkSpec {
            rate: BitRate::from_gbps(40),
            delay: SimDuration::from_us(1),
        }
    }
}

/// A built topology with handles.
#[derive(Debug, Clone)]
pub struct Built {
    /// The graph.
    pub topo: Topology,
    /// Hosts in builder-documented order.
    pub hosts: Vec<NodeId>,
    /// Switches in builder-documented order.
    pub switches: Vec<NodeId>,
}

/// Two switches joined by one link, one injecting host on the first switch
/// and (for realism) one host on the second. The routing loop itself is
/// installed by the routing layer (Case 1 / Fig. 2(a)).
///
/// Order: `switches = [A, B]`, `hosts = [hA, hB]`.
pub fn two_switch_loop(spec: LinkSpec) -> Built {
    let mut t = Topology::new();
    let a = t.add_switch_tiered("A", 1);
    let b = t.add_switch_tiered("B", 1);
    let ha = t.add_host("hA");
    let hb = t.add_host("hB");
    t.connect(a, b, spec.rate, spec.delay);
    t.connect(ha, a, spec.rate, spec.delay);
    t.connect(hb, b, spec.rate, spec.delay);
    t.validate().expect("two_switch_loop invariants");
    Built {
        topo: t,
        hosts: vec![ha, hb],
        switches: vec![a, b],
    }
}

/// A unidirectionally-used ring of `n` switches, one host per switch
/// (Fig. 1 uses n = 3). Switch `i` connects to switch `(i+1) % n`.
///
/// Order: `switches[i]` ↔ `hosts[i]`.
pub fn ring(n: usize, spec: LinkSpec) -> Built {
    assert!(n >= 2, "ring needs at least 2 switches");
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..n)
        .map(|i| t.add_switch_tiered(format!("S{i}"), 1))
        .collect();
    let hosts: Vec<NodeId> = (0..n).map(|i| t.add_host(format!("h{i}"))).collect();
    for i in 0..n {
        if n == 2 && i == 1 {
            break; // avoid a parallel second link in the 2-ring
        }
        t.connect(switches[i], switches[(i + 1) % n], spec.rate, spec.delay);
    }
    for i in 0..n {
        t.connect(hosts[i], switches[i], spec.rate, spec.delay);
    }
    t.validate().expect("ring invariants");
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// The paper's 4-switch square (Figs. 3–5): switches A, B, C, D with links
/// A–B, B–C, C–D, D–A and one host per switch.
///
/// Link direction naming used across the experiments (paper Fig. 3(a)):
/// `L1 = A→B`, `L2 = B→C`, `L3 = C→D`, `L4 = D→A`.
///
/// Order: `switches = [A, B, C, D]`, `hosts = [a, b, c, d]`.
pub fn square(spec: LinkSpec) -> Built {
    ring(4, spec)
}

/// A leaf–spine (2-tier Clos): every leaf connects to every spine;
/// `hosts_per_leaf` hosts per leaf.
///
/// Order: `switches = [leaf0..leafL-1, spine0..spineS-1]`,
/// `hosts = leaf-major (leaf0's hosts first)`.
pub fn leaf_spine(leaves: usize, spines: usize, hosts_per_leaf: usize, spec: LinkSpec) -> Built {
    assert!(leaves >= 1 && spines >= 1, "need at least one of each tier");
    let mut t = Topology::new();
    let leaf_ids: Vec<NodeId> = (0..leaves)
        .map(|i| t.add_switch_tiered(format!("leaf{i}"), 1))
        .collect();
    let spine_ids: Vec<NodeId> = (0..spines)
        .map(|i| t.add_switch_tiered(format!("spine{i}"), 2))
        .collect();
    let mut hosts = Vec::new();
    for (li, &leaf) in leaf_ids.iter().enumerate() {
        for h in 0..hosts_per_leaf {
            let host = t.add_host(format!("h{li}-{h}"));
            t.connect(host, leaf, spec.rate, spec.delay);
            hosts.push(host);
        }
    }
    for &leaf in &leaf_ids {
        for &spine in &spine_ids {
            t.connect(leaf, spine, spec.rate, spec.delay);
        }
    }
    t.validate().expect("leaf_spine invariants");
    let mut switches = leaf_ids;
    switches.extend(spine_ids);
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// A 3-tier k-ary fat-tree (k even): k pods, each with k/2 edge and k/2
/// aggregation switches; (k/2)² cores; (k/2) hosts per edge; k³/4 hosts.
///
/// Order: `switches = [edges pod-major, aggs pod-major, cores]`,
/// `hosts = pod-major, edge-major`.
pub fn fat_tree(k: usize, spec: LinkSpec) -> Built {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires even k >= 2"
    );
    let half = k / 2;
    let mut t = Topology::new();
    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for p in 0..k {
        for e in 0..half {
            edges.push(t.add_switch_tiered(format!("edge{p}-{e}"), 1));
        }
    }
    for p in 0..k {
        for a in 0..half {
            aggs.push(t.add_switch_tiered(format!("agg{p}-{a}"), 2));
        }
    }
    let cores: Vec<NodeId> = (0..half * half)
        .map(|c| t.add_switch_tiered(format!("core{c}"), 3))
        .collect();
    let mut hosts = Vec::new();
    for p in 0..k {
        for e in 0..half {
            let edge = edges[p * half + e];
            for h in 0..half {
                let host = t.add_host(format!("h{p}-{e}-{h}"));
                t.connect(host, edge, spec.rate, spec.delay);
                hosts.push(host);
            }
        }
    }
    // Edge <-> agg full bipartite within a pod.
    for p in 0..k {
        for e in 0..half {
            for a in 0..half {
                t.connect(
                    edges[p * half + e],
                    aggs[p * half + a],
                    spec.rate,
                    spec.delay,
                );
            }
        }
    }
    // Agg a of every pod connects to cores [a*half, (a+1)*half).
    for p in 0..k {
        for a in 0..half {
            for c in 0..half {
                t.connect(
                    aggs[p * half + a],
                    cores[a * half + c],
                    spec.rate,
                    spec.delay,
                );
            }
        }
    }
    t.validate().expect("fat_tree invariants");
    let mut switches = edges;
    switches.extend(aggs);
    switches.extend(cores);
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// BCube(n, k): a server-centric topology. Servers forward traffic, so each
/// "server" is modelled as a tier-0 forwarding switch with a single host
/// attached (keeping the one-port NIC model). There are n^(k+1) servers and
/// (k+1)·n^k level switches.
///
/// Order: `switches = [server-switches…, level-0 switches…, level-1 …]`,
/// `hosts[i]` attaches `switches[i]` (the i-th server).
pub fn bcube(n: usize, k: usize, spec: LinkSpec) -> Built {
    assert!(n >= 2, "bcube needs n >= 2 ports per switch");
    let n_servers = n.pow(k as u32 + 1);
    let per_level = n.pow(k as u32);
    let mut t = Topology::new();
    let servers: Vec<NodeId> = (0..n_servers)
        .map(|i| t.add_switch_tiered(format!("srv{i}"), 0))
        .collect();
    let mut level_switches = Vec::new();
    for lvl in 0..=k {
        for s in 0..per_level {
            level_switches.push(t.add_switch_tiered(format!("sw{lvl}-{s}"), 1));
        }
    }
    let hosts: Vec<NodeId> = (0..n_servers)
        .map(|i| {
            let h = t.add_host(format!("h{i}"));
            t.connect(h, servers[i], spec.rate, spec.delay);
            h
        })
        .collect();
    // Server with digits (d_k … d_0) base n connects at level l to switch
    // indexed by the digits with d_l removed.
    for (i, &srv) in servers.iter().enumerate() {
        for lvl in 0..=k {
            let mut idx = 0;
            let mut mul = 1;
            for d in 0..=k {
                if d == lvl {
                    continue;
                }
                let digit = (i / n.pow(d as u32)) % n;
                idx += digit * mul;
                mul *= n;
            }
            let sw = level_switches[lvl * per_level + idx];
            t.connect(srv, sw, spec.rate, spec.delay);
        }
    }
    t.validate().expect("bcube invariants");
    let mut switches = servers;
    switches.extend(level_switches);
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// Jellyfish: a random `degree`-regular graph over `n_switches`, built with
/// deterministic seeded edge sampling + swaps, `hosts_per_switch` hosts each.
///
/// Order: `switches[i]` gets hosts `[i*hps, (i+1)*hps)`.
pub fn jellyfish(
    n_switches: usize,
    degree: usize,
    hosts_per_switch: usize,
    seed: u64,
    spec: LinkSpec,
) -> Built {
    assert!(n_switches > degree, "degree must be < n_switches");
    assert!(
        (n_switches * degree).is_multiple_of(2),
        "n_switches * degree must be even"
    );
    let mut rng = SimRng::new(seed);
    // Pairing model with retries: sample a perfect matching on port stubs,
    // rejecting self-loops and parallel edges via bounded re-draws.
    let edges = loop {
        let mut stubs: Vec<usize> = (0..n_switches)
            .flat_map(|s| std::iter::repeat_n(s, degree))
            .collect();
        rng.shuffle(&mut stubs);
        let mut used = std::collections::BTreeSet::new();
        let mut edges = Vec::with_capacity(n_switches * degree / 2);
        let mut ok = true;
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            let key = (u.min(v), u.max(v));
            if u == v || !used.insert(key) {
                ok = false;
                break;
            }
            edges.push(key);
        }
        if ok {
            break edges;
        }
    };
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..n_switches)
        .map(|i| t.add_switch(format!("J{i}")))
        .collect();
    let mut hosts = Vec::new();
    for (i, &sw) in switches.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = t.add_host(format!("h{i}-{h}"));
            t.connect(host, sw, spec.rate, spec.delay);
            hosts.push(host);
        }
    }
    for (u, v) in edges {
        t.connect(switches[u], switches[v], spec.rate, spec.delay);
    }
    t.validate().expect("jellyfish invariants");
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// 2-D torus: `rows × cols` switches, wraparound in both dimensions, one
/// host each. A classic deadlock-prone interconnect (cf. the odd–even turn
/// model literature the paper cites).
pub fn torus2d(rows: usize, cols: usize, spec: LinkSpec) -> Built {
    assert!(rows >= 2 && cols >= 2, "torus needs at least 2x2");
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..rows * cols)
        .map(|i| t.add_switch(format!("T{}-{}", i / cols, i % cols)))
        .collect();
    let hosts: Vec<NodeId> = (0..rows * cols)
        .map(|i| {
            let h = t.add_host(format!("h{}-{}", i / cols, i % cols));
            t.connect(h, switches[i], spec.rate, spec.delay);
            h
        })
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            let cur = switches[r * cols + c];
            // Right neighbor (wraps) — skip duplicate when cols == 2 and c == 1.
            if !(cols == 2 && c == 1) {
                let right = switches[r * cols + (c + 1) % cols];
                t.connect(cur, right, spec.rate, spec.delay);
            }
            if !(rows == 2 && r == 1) {
                let down = switches[((r + 1) % rows) * cols + c];
                t.connect(cur, down, spec.rate, spec.delay);
            }
        }
    }
    t.validate().expect("torus invariants");
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// 2-D mesh (no wraparound): `rows × cols` switches, one host each.
/// The canonical substrate for turn-model routing (XY/odd-even — the
/// paper's citation \[22\] territory).
pub fn mesh2d(rows: usize, cols: usize, spec: LinkSpec) -> Built {
    assert!(rows >= 2 && cols >= 2, "mesh needs at least 2x2");
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..rows * cols)
        .map(|i| t.add_switch(format!("M{}-{}", i / cols, i % cols)))
        .collect();
    let hosts: Vec<NodeId> = (0..rows * cols)
        .map(|i| {
            let h = t.add_host(format!("h{}-{}", i / cols, i % cols));
            t.connect(h, switches[i], spec.rate, spec.delay);
            h
        })
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            let cur = switches[r * cols + c];
            if c + 1 < cols {
                t.connect(cur, switches[r * cols + c + 1], spec.rate, spec.delay);
            }
            if r + 1 < rows {
                t.connect(cur, switches[(r + 1) * cols + c], spec.rate, spec.delay);
            }
        }
    }
    t.validate().expect("mesh invariants");
    Built {
        topo: t,
        hosts,
        switches,
    }
}

/// A chain of `n` switches, one host at each end plus one per switch —
/// handy for buffer-class (hop count) experiments.
pub fn line(n: usize, spec: LinkSpec) -> Built {
    assert!(n >= 1, "line needs at least 1 switch");
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..n)
        .map(|i| t.add_switch_tiered(format!("S{i}"), 1))
        .collect();
    for i in 1..n {
        t.connect(switches[i - 1], switches[i], spec.rate, spec.delay);
    }
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = t.add_host(format!("h{i}"));
            t.connect(h, switches[i], spec.rate, spec.delay);
            h
        })
        .collect();
    t.validate().expect("line invariants");
    Built {
        topo: t,
        hosts,
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn spec() -> LinkSpec {
        LinkSpec::default()
    }

    #[test]
    fn two_switch_loop_shape() {
        let b = two_switch_loop(spec());
        assert_eq!(b.switches.len(), 2);
        assert_eq!(b.hosts.len(), 2);
        assert_eq!(b.topo.link_count(), 3);
        assert!(b.topo.port_towards(b.switches[0], b.switches[1]).is_some());
    }

    #[test]
    fn ring_shape() {
        let b = ring(4, spec());
        assert_eq!(b.topo.link_count(), 4 + 4); // ring + host links
        for i in 0..4 {
            assert!(b
                .topo
                .port_towards(b.switches[i], b.switches[(i + 1) % 4])
                .is_some());
        }
    }

    #[test]
    fn ring_of_two_has_single_interswitch_link() {
        let b = ring(2, spec());
        assert_eq!(b.topo.link_count(), 1 + 2);
    }

    #[test]
    fn square_is_paper_fig3_topology() {
        let b = square(spec());
        assert_eq!(b.switches.len(), 4);
        assert_eq!(b.hosts.len(), 4);
        let names: Vec<_> = b
            .switches
            .iter()
            .map(|&s| b.topo.node(s).name.clone())
            .collect();
        assert_eq!(names, ["S0", "S1", "S2", "S3"]);
    }

    #[test]
    fn leaf_spine_shape() {
        let b = leaf_spine(4, 2, 3, spec());
        assert_eq!(b.switches.len(), 6);
        assert_eq!(b.hosts.len(), 12);
        // leaf-spine links = 4*2; host links = 12.
        assert_eq!(b.topo.link_count(), 8 + 12);
        // leaves are tier 1, spines tier 2.
        assert_eq!(b.topo.node(b.switches[0]).tier, Some(1));
        assert_eq!(b.topo.node(b.switches[5]).tier, Some(2));
    }

    #[test]
    fn fat_tree_k4_counts() {
        let b = fat_tree(4, spec());
        // k=4: 16 hosts, 8 edge, 8 agg, 4 core.
        assert_eq!(b.hosts.len(), 16);
        assert_eq!(b.switches.len(), 20);
        // links: 16 host + 4 pods * 4 edge-agg + 8 aggs * 2 cores = 16+16+16.
        assert_eq!(b.topo.link_count(), 48);
        let tiers: Vec<_> = b
            .switches
            .iter()
            .map(|&s| b.topo.node(s).tier.unwrap())
            .collect();
        assert_eq!(tiers.iter().filter(|&&t| t == 1).count(), 8);
        assert_eq!(tiers.iter().filter(|&&t| t == 2).count(), 8);
        assert_eq!(tiers.iter().filter(|&&t| t == 3).count(), 4);
    }

    #[test]
    fn fat_tree_every_edge_reaches_every_core_via_some_agg() {
        let b = fat_tree(4, spec());
        // Structural sanity: each agg has half=2 core links.
        let aggs: Vec<_> = b
            .switches
            .iter()
            .copied()
            .filter(|&s| b.topo.node(s).tier == Some(2))
            .collect();
        for agg in aggs {
            let n_core = b
                .topo
                .ports(agg)
                .iter()
                .filter(|p| b.topo.node(p.peer).tier == Some(3))
                .count();
            assert_eq!(n_core, 2);
        }
    }

    #[test]
    fn bcube_1_2_counts() {
        // BCube(n=2, k=1): 4 servers, 2 levels x 2 switches.
        let b = bcube(2, 1, spec());
        assert_eq!(b.hosts.len(), 4);
        assert_eq!(b.switches.len(), 4 + 4);
        // each server: 1 host link + 2 level links => 4 + 8 links total.
        assert_eq!(b.topo.link_count(), 4 + 8);
        // each level switch has n=2 server links.
        for sw in &b.switches[4..] {
            assert_eq!(b.topo.ports(*sw).len(), 2);
        }
    }

    #[test]
    fn jellyfish_is_regular_and_deterministic() {
        let b1 = jellyfish(10, 3, 1, 42, spec());
        let b2 = jellyfish(10, 3, 1, 42, spec());
        assert_eq!(b1.topo.link_count(), b2.topo.link_count());
        for (l1, l2) in b1.topo.links().iter().zip(b2.topo.links()) {
            assert_eq!((l1.a, l1.b), (l2.a, l2.b));
        }
        for &sw in &b1.switches {
            let sw_deg = b1
                .topo
                .ports(sw)
                .iter()
                .filter(|p| b1.topo.node(p.peer).kind == NodeKind::Switch)
                .count();
            assert_eq!(sw_deg, 3, "switch degree");
        }
    }

    #[test]
    fn jellyfish_different_seed_differs() {
        let b1 = jellyfish(12, 3, 0, 1, spec());
        let b2 = jellyfish(12, 3, 0, 2, spec());
        let e1: Vec<_> = b1.topo.links().iter().map(|l| (l.a, l.b)).collect();
        let e2: Vec<_> = b2.topo.links().iter().map(|l| (l.a, l.b)).collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn torus_shape() {
        let b = torus2d(3, 3, spec());
        assert_eq!(b.switches.len(), 9);
        // 9 host links + 2*9 torus links.
        assert_eq!(b.topo.link_count(), 9 + 18);
        for &sw in &b.switches {
            let deg = b
                .topo
                .ports(sw)
                .iter()
                .filter(|p| b.topo.node(p.peer).kind == NodeKind::Switch)
                .count();
            assert_eq!(deg, 4);
        }
    }

    #[test]
    fn torus_2x2_avoids_parallel_links() {
        let b = torus2d(2, 2, spec());
        assert_eq!(b.topo.link_count(), 4 + 4);
        b.topo.validate().unwrap();
    }

    #[test]
    fn mesh_shape() {
        let b = mesh2d(3, 4, spec());
        assert_eq!(b.switches.len(), 12);
        // host links + horizontal (3*3) + vertical (2*4).
        assert_eq!(b.topo.link_count(), 12 + 9 + 8);
        // Corner has degree 2 (switch links), middle has 4.
        let deg = |i: usize| {
            b.topo
                .ports(b.switches[i])
                .iter()
                .filter(|p| b.topo.node(p.peer).kind == NodeKind::Switch)
                .count()
        };
        assert_eq!(deg(0), 2);
        assert_eq!(deg(5), 4); // (1,1) interior
    }

    #[test]
    fn line_shape() {
        let b = line(5, spec());
        assert_eq!(b.topo.link_count(), 4 + 5);
        assert_eq!(b.hosts.len(), 5);
    }
}
