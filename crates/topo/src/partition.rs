//! Switch-group partitioning for parallel simulation.
//!
//! Splits a topology's switches into `parts` balanced, connectivity-aware
//! groups — the logical processes of a partitioned simulation run. Hosts
//! follow the switch their first port attaches to, so a host↔ToR link is
//! never a cut link and the cut set stays on the switch fabric, where
//! inter-switch propagation delays (the conservative-sync lookahead) are
//! largest.
//!
//! The assignment is a deterministic min-cut-ish heuristic, not an exact
//! min cut: parts grow by breadth-first search over the switch adjacency
//! graph from deterministic seeds, preferring neighbors of the growing
//! part so pods and racks stay together. Exactness of the simulation
//! never depends on the cut quality — a bad partition only costs speed —
//! and callers that know better (pod boundaries, custom fabrics) can
//! bypass the heuristic entirely with an explicit
//! per-switch assignment.

use std::collections::VecDeque;

use crate::graph::{NodeKind, Topology};
use crate::ids::NodeId;

/// A partition assignment: `part_of[node]` for every node id, with
/// `u32::MAX` never present (every node is assigned).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Part index per node id (hosts included).
    pub part_of: Vec<u32>,
    /// Number of parts actually produced (≤ the requested count).
    pub parts: u32,
}

impl Partition {
    /// The trivial single-part assignment.
    pub fn trivial(topo: &Topology) -> Self {
        Partition {
            part_of: vec![0; topo.node_count()],
            parts: 1,
        }
    }

    /// Build from an explicit per-*switch* assignment (`(switch, part)`
    /// pairs); hosts follow their first-port switch. Parts must form a
    /// contiguous `0..n` range over the listed values and every switch
    /// must be listed, else an error describing the hole is returned.
    pub fn explicit(topo: &Topology, assignment: &[(NodeId, u32)]) -> Result<Self, String> {
        let mut part_of = vec![u32::MAX; topo.node_count()];
        for &(node, part) in assignment {
            if node.0 as usize >= topo.node_count() {
                return Err(format!("assignment names unknown node {node:?}"));
            }
            if topo.node(node).kind != NodeKind::Switch {
                return Err(format!("assignment names non-switch node {node:?}"));
            }
            part_of[node.0 as usize] = part;
        }
        let max_part = assignment.iter().map(|&(_, p)| p).max().unwrap_or(0);
        for s in topo.switches() {
            if part_of[s.0 as usize] == u32::MAX {
                return Err(format!("switch {s:?} missing from explicit assignment"));
            }
        }
        for p in 0..=max_part {
            if !assignment.iter().any(|&(_, q)| q == p) {
                return Err(format!("part {p} is empty; parts must be contiguous"));
            }
        }
        let mut out = Partition {
            part_of,
            parts: max_part + 1,
        };
        attach_hosts(topo, &mut out.part_of);
        Ok(out)
    }
}

/// Assign every host the part of the switch its first port attaches to
/// (single-homed hosts have exactly one; multi-homed hosts follow their
/// first-listed uplink, a deterministic choice).
fn attach_hosts(topo: &Topology, part_of: &mut [u32]) {
    for h in topo.hosts() {
        let part = topo
            .ports(h)
            .iter()
            .map(|p| part_of[p.peer.0 as usize])
            .find(|&p| p != u32::MAX)
            .unwrap_or(0);
        part_of[h.0 as usize] = part;
    }
}

/// Partition the switches of `topo` into at most `parts` balanced groups.
///
/// `pins` lists switches that must all land in **part 0** (the
/// partitioned engine runs its fault-randomness stream on part 0, so
/// every switch that draws from it must live there). Pinned switches
/// seed part 0's BFS; everything else grows breadth-first from the
/// lowest-id unassigned switch, capped at `ceil(n_switches / parts)` per
/// part. Deterministic: ties break on node id everywhere.
///
/// The result may have fewer parts than requested (more parts than
/// switches, or growth swallowing later seeds); callers treat a
/// single-part result as "run serial".
pub fn partition_switches(topo: &Topology, parts: usize, pins: &[NodeId]) -> Partition {
    let switches: Vec<NodeId> = topo.switches().collect();
    let parts = parts.clamp(1, switches.len().max(1));
    if parts <= 1 || switches.is_empty() {
        return Partition::trivial(topo);
    }
    let cap = switches.len().div_ceil(parts);
    let mut part_of = vec![u32::MAX; topo.node_count()];
    let mut next_part: u32 = 0;

    // Switch-to-switch adjacency walker; neighbor order is port order,
    // which is attachment order — deterministic.
    let neighbors = |n: NodeId| -> Vec<NodeId> {
        topo.ports(n)
            .iter()
            .map(|p| p.peer)
            .filter(|&m| topo.node(m).kind == NodeKind::Switch)
            .collect()
    };

    // Part 0: seeded by every pin (deduped, id order), then BFS.
    let mut seeds0: Vec<NodeId> = pins
        .iter()
        .copied()
        .filter(|n| topo.node(*n).kind == NodeKind::Switch)
        .collect();
    seeds0.sort_unstable();
    seeds0.dedup();
    let grow = |seeds: &[NodeId], part: u32, part_of: &mut Vec<u32>| {
        let mut size = 0usize;
        let mut q: VecDeque<NodeId> = VecDeque::new();
        for &s in seeds {
            if part_of[s.0 as usize] == u32::MAX {
                part_of[s.0 as usize] = part;
                size += 1;
                q.push_back(s);
            }
        }
        // Pins may exceed the balance cap; part 0 absorbs them all —
        // correctness requires co-location, balance is best-effort.
        while let Some(n) = q.pop_front() {
            if size >= cap && q.is_empty() {
                break;
            }
            for m in neighbors(n) {
                if size >= cap {
                    break;
                }
                if part_of[m.0 as usize] == u32::MAX {
                    part_of[m.0 as usize] = part;
                    size += 1;
                    q.push_back(m);
                }
            }
        }
    };
    if !seeds0.is_empty() {
        grow(&seeds0, 0, &mut part_of);
        next_part = 1;
    }
    // Remaining parts grow from the lowest-id unassigned switch.
    while next_part < parts as u32 {
        let Some(&seed) = switches.iter().find(|s| part_of[s.0 as usize] == u32::MAX) else {
            break;
        };
        grow(&[seed], next_part, &mut part_of);
        next_part += 1;
    }
    // Leftovers (growth exhausted before `parts` seeds, or disconnected
    // stragglers): join the part of the lowest-id assigned neighbor, or
    // the smallest part if isolated.
    let mut sizes = vec![0usize; next_part.max(1) as usize];
    for s in &switches {
        let p = part_of[s.0 as usize];
        if p != u32::MAX {
            sizes[p as usize] += 1;
        }
    }
    for s in &switches {
        if part_of[s.0 as usize] != u32::MAX {
            continue;
        }
        let by_neighbor = neighbors(*s)
            .into_iter()
            .map(|m| part_of[m.0 as usize])
            .find(|&p| p != u32::MAX);
        let p = by_neighbor.unwrap_or_else(|| {
            sizes
                .iter()
                .enumerate()
                .min_by_key(|&(i, &sz)| (sz, i))
                .map(|(i, _)| i as u32)
                .unwrap_or(0)
        });
        part_of[s.0 as usize] = p;
        sizes[p as usize] += 1;
    }
    let produced = next_part.max(1);
    let mut out = Partition {
        part_of,
        parts: produced,
    };
    attach_hosts(topo, &mut out.part_of);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree, ring, LinkSpec};

    #[test]
    fn ring_splits_contiguously_and_hosts_follow() {
        let b = ring(8, LinkSpec::default());
        let p = partition_switches(&b.topo, 4, &[]);
        assert_eq!(p.parts, 4);
        // Every node assigned; hosts share their switch's part.
        for h in &b.hosts {
            let sw = b.topo.ports(*h)[0].peer;
            assert_eq!(p.part_of[h.0 as usize], p.part_of[sw.0 as usize]);
        }
        // Balanced: 2 switches per part.
        for part in 0..4u32 {
            let n = b
                .switches
                .iter()
                .filter(|s| p.part_of[s.0 as usize] == part)
                .count();
            assert_eq!(n, 2, "part {part} unbalanced");
        }
    }

    #[test]
    fn pins_land_in_part_zero() {
        let b = ring(8, LinkSpec::default());
        let pins = [b.switches[5], b.switches[6]];
        let p = partition_switches(&b.topo, 4, &pins);
        for pin in pins {
            assert_eq!(p.part_of[pin.0 as usize], 0);
        }
    }

    #[test]
    fn requesting_more_parts_than_switches_clamps() {
        let b = ring(3, LinkSpec::default());
        let p = partition_switches(&b.topo, 16, &[]);
        assert!(p.parts as usize <= 3);
        assert!(p.parts >= 1);
    }

    #[test]
    fn fat_tree_partition_is_deterministic_and_total() {
        let b = fat_tree(4, LinkSpec::default());
        let p1 = partition_switches(&b.topo, 4, &[]);
        let p2 = partition_switches(&b.topo, 4, &[]);
        assert_eq!(p1.part_of, p2.part_of);
        assert!(p1.part_of.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn explicit_assignment_round_trips_and_rejects_holes() {
        let b = ring(4, LinkSpec::default());
        let full: Vec<_> = b
            .switches
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, (i % 2) as u32))
            .collect();
        let p = Partition::explicit(&b.topo, &full).expect("total assignment");
        assert_eq!(p.parts, 2);
        let partial = &full[..3];
        assert!(Partition::explicit(&b.topo, partial).is_err());
        let gappy: Vec<_> = b.switches.iter().map(|&s| (s, 2u32)).collect();
        assert!(Partition::explicit(&b.topo, &gappy).is_err());
    }
}
