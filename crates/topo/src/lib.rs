//! # pfcsim-topo — datacenter topologies and routing
//!
//! Graph model ([`graph`]), typed ids ([`ids`]), a catalogue of standard
//! datacenter topologies ([`builders`]: rings, the paper's 4-switch square,
//! leaf–spine, k-ary fat-trees, BCube, Jellyfish, 2-D torus), and routing
//! ([`routing`]: shortest-path ECMP, valley-free up–down, pinned paths,
//! and deliberate loop injection).
//!
//! ```
//! use pfcsim_topo::prelude::*;
//!
//! let built = fat_tree(4, LinkSpec::default());
//! let tables = up_down_tables(&built.topo);
//! let trace = trace_path(
//!     &built.topo, &tables, FlowId(0), built.hosts[0], built.hosts[15], 16,
//! );
//! assert!(trace.delivered());
//! ```

#![warn(missing_docs)]

pub mod builders;
pub mod graph;
pub mod ids;
pub mod partition;
pub mod routing;

/// Common imports.
pub mod prelude {
    pub use crate::builders::{
        bcube, fat_tree, jellyfish, leaf_spine, line, mesh2d, ring, square, torus2d,
        two_switch_loop, Built, LinkSpec,
    };
    pub use crate::graph::{Link, Node, NodeKind, PortRef, Topology};
    pub use crate::ids::{Channel, FlowId, LinkId, NodeId, PortNo, Priority};
    pub use crate::partition::{partition_switches, Partition};
    pub use crate::routing::{
        bfs_distances, ecmp_index, install_cycle_route, path_stretch, shortest_path_tables,
        trace_path, up_down_tables, ForwardingTables, PinnedPath, Trace,
    };
}
