//! Routing: forwarding tables, path computation, ECMP, and loop injection.
//!
//! Tables are per-destination-host next-hop sets, exactly like real L3
//! datacenter fabrics (the paper's networks run BGP with one private AS per
//! switch). Deliberately *wrong* tables — routing loops from
//! misconfiguration, BGP reroute or SDN-update transients — are first-class
//! citizens here, because they are the paper's deadlock triggers.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::graph::{NodeKind, Topology};
use crate::ids::{FlowId, NodeId, PortNo};

/// Per-node, per-destination next-hop port sets (ECMP when > 1).
///
/// Stored dense — `tables[node][dst]` is the port list, empty meaning
/// unroutable — so the per-packet `next_hops` lookup on the forwarding
/// path is two array indexes rather than a tree walk. Node-id spaces are
/// small (a fat-tree k=8 is ~200 nodes), so the quadratic table is a few
/// hundred KB at worst while updates stay O(1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ForwardingTables {
    tables: Vec<Vec<Vec<PortNo>>>,
}

impl ForwardingTables {
    /// Empty tables sized for `topo`.
    pub fn empty(topo: &Topology) -> Self {
        ForwardingTables {
            tables: vec![vec![Vec::new(); topo.node_count()]; topo.node_count()],
        }
    }

    /// Next-hop ports at `node` toward destination host `dst` (empty slice
    /// if unroutable).
    pub fn next_hops(&self, node: NodeId, dst: NodeId) -> &[PortNo] {
        self.tables
            .get(node.0 as usize)
            .and_then(|t| t.get(dst.0 as usize))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Install/overwrite the route for `dst` at `node`.
    pub fn set(&mut self, node: NodeId, dst: NodeId, ports: Vec<PortNo>) {
        let row = &mut self.tables[node.0 as usize];
        if row.len() <= dst.0 as usize {
            row.resize(dst.0 as usize + 1, Vec::new());
        }
        row[dst.0 as usize] = ports;
    }

    /// Remove the route for `dst` at `node` (black-hole).
    pub fn remove(&mut self, node: NodeId, dst: NodeId) {
        if let Some(p) = self.tables[node.0 as usize].get_mut(dst.0 as usize) {
            p.clear();
        }
    }

    /// All (dst, ports) entries at `node`, in ascending destination order.
    pub fn entries(&self, node: NodeId) -> impl Iterator<Item = (NodeId, &[PortNo])> + '_ {
        self.tables[node.0 as usize]
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(d, p)| (NodeId(d as u32), p.as_slice()))
    }

    /// Deterministic ECMP pick for a flow at a node.
    pub fn select(&self, node: NodeId, dst: NodeId, flow: FlowId) -> Option<PortNo> {
        let hops = self.next_hops(node, dst);
        if hops.is_empty() {
            return None;
        }
        Some(hops[ecmp_index(flow, node, hops.len())])
    }
}

/// Deterministic ECMP index: a stateless hash of (flow, node) — the same
/// flow always takes the same port at a given switch (per-flow ECMP).
pub fn ecmp_index(flow: FlowId, node: NodeId, n: usize) -> usize {
    debug_assert!(n > 0);
    let mut x = (flow.0 as u64) << 32 | node.0 as u64;
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % n as u64) as usize
}

/// BFS distances (in hops) from `from` to every node, not routing through
/// hosts (hosts have degree 1 anyway, but parallel models may differ).
pub fn bfs_distances(topo: &Topology, from: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; topo.node_count()];
    dist[from.0 as usize] = Some(0);
    let mut q = VecDeque::from([from]);
    while let Some(u) = q.pop_front() {
        let du = dist[u.0 as usize].expect("queued nodes have distances");
        // Hosts terminate paths (except the source itself).
        if topo.node(u).kind == NodeKind::Host && u != from {
            continue;
        }
        for p in topo.ports(u) {
            let v = p.peer;
            if dist[v.0 as usize].is_none() {
                dist[v.0 as usize] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

/// Shortest-path (ECMP) tables toward every host.
///
/// For each destination host, a reverse BFS labels every node with its
/// hop distance to the destination; every port leading strictly downhill
/// is an equal-cost next hop. Port order (and hence deterministic ECMP
/// choice) follows attachment order.
pub fn shortest_path_tables(topo: &Topology) -> ForwardingTables {
    let mut ft = ForwardingTables::empty(topo);
    for dst in topo.hosts().collect::<Vec<_>>() {
        let dist = bfs_distances(topo, dst);
        for node in topo.nodes() {
            if node.id == dst {
                continue;
            }
            let Some(du) = dist[node.id.0 as usize] else {
                continue;
            };
            let mut hops = Vec::new();
            for p in topo.ports(node.id) {
                if let Some(dv) = dist[p.peer.0 as usize] {
                    if dv + 1 == du {
                        hops.push(p.port);
                    }
                }
            }
            if !hops.is_empty() {
                ft.set(node.id, dst, hops);
            }
        }
    }
    ft
}

/// Up–down (valley-free) tables for tiered topologies: a packet travels
/// upward (increasing tier) zero or more hops, then downward only. This is
/// the classic deadlock-free routing for Clos/fat-trees (Stephens et al.).
///
/// # Panics
/// Panics if any switch lacks a tier.
pub fn up_down_tables(topo: &Topology) -> ForwardingTables {
    let n = topo.node_count();
    let tier = |id: NodeId| -> u8 {
        topo.node(id).tier.unwrap_or_else(|| {
            panic!(
                "up_down_tables requires tiers; {} has none",
                topo.node(id).name
            )
        })
    };
    let host_ids: Vec<NodeId> = topo.hosts().collect();
    let host_index: BTreeMap<NodeId, usize> =
        host_ids.iter().enumerate().map(|(i, &h)| (h, i)).collect();

    // down_reach[u] = set of hosts reachable from u moving strictly to
    // lower tiers. Represented as bitsets.
    let words = host_ids.len().div_ceil(64);
    let mut down_reach = vec![vec![0u64; words]; n];
    for (&h, &i) in &host_index {
        down_reach[h.0 as usize][i / 64] |= 1 << (i % 64);
    }
    // Process nodes in increasing tier order so lower tiers are final.
    let mut order: Vec<NodeId> = topo.nodes().iter().map(|nd| nd.id).collect();
    order.sort_by_key(|&id| tier(id));
    for &u in &order {
        if topo.node(u).kind == NodeKind::Host {
            continue;
        }
        for p in topo.ports(u).to_vec() {
            if tier(p.peer) < tier(u) {
                let (a, b) = (u.0 as usize, p.peer.0 as usize);
                // rv = down_reach[b] merged into down_reach[a]
                for w in 0..words {
                    let v = down_reach[b][w];
                    down_reach[a][w] |= v;
                }
            }
        }
    }
    // up_reach[u] = hosts reachable by first moving up (possibly zero hops)
    // then down. Process in decreasing tier order.
    let mut up_reach = down_reach.clone();
    for &u in order.iter().rev() {
        if topo.node(u).kind == NodeKind::Host {
            continue;
        }
        for p in topo.ports(u).to_vec() {
            if tier(p.peer) > tier(u) {
                let (a, b) = (u.0 as usize, p.peer.0 as usize);
                for w in 0..words {
                    let v = up_reach[b][w];
                    up_reach[a][w] |= v;
                }
            }
        }
    }

    let has = |set: &[u64], hi: usize| set[hi / 64] >> (hi % 64) & 1 == 1;
    let mut ft = ForwardingTables::empty(topo);
    for node in topo.nodes() {
        if node.kind == NodeKind::Host {
            continue;
        }
        for (&dst, &hi) in &host_index {
            if dst == node.id {
                continue;
            }
            let mut down_ports = Vec::new();
            let mut up_ports = Vec::new();
            for p in topo.ports(node.id) {
                if p.peer == dst {
                    down_ports.push(p.port);
                    continue;
                }
                if topo.node(p.peer).kind == NodeKind::Host {
                    continue;
                }
                if tier(p.peer) < tier(node.id) && has(&down_reach[p.peer.0 as usize], hi) {
                    down_ports.push(p.port);
                } else if tier(p.peer) > tier(node.id) && has(&up_reach[p.peer.0 as usize], hi) {
                    up_ports.push(p.port);
                }
            }
            // Valley-free preference: down if possible, else up.
            if !down_ports.is_empty() {
                ft.set(node.id, dst, down_ports);
            } else if !up_ports.is_empty() {
                ft.set(node.id, dst, up_ports);
            }
        }
    }
    ft
}

/// Install a static route that makes `dst`-bound packets circulate around
/// `cycle` (a list of adjacent switches). Every switch in the cycle
/// forwards toward the next one; the cycle must be closed by adjacency
/// between last and first.
///
/// Models the paper's misconfiguration/transient-loop triggers.
pub fn install_cycle_route(
    topo: &Topology,
    ft: &mut ForwardingTables,
    cycle: &[NodeId],
    dst: NodeId,
) {
    assert!(cycle.len() >= 2, "cycle needs at least two switches");
    for i in 0..cycle.len() {
        let cur = cycle[i];
        let next = cycle[(i + 1) % cycle.len()];
        let port = topo
            .port_towards(cur, next)
            .unwrap_or_else(|| panic!("cycle nodes {cur} and {next} are not adjacent"))
            .port;
        ft.set(cur, dst, vec![port]);
    }
}

/// Result of tracing a flow's path through the tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trace {
    /// Reached the destination; nodes visited, inclusive of both hosts.
    Delivered(Vec<NodeId>),
    /// Exceeded `max_hops` — a forwarding loop; nodes visited so far.
    Looping(Vec<NodeId>),
    /// A node had no route to the destination; nodes visited so far.
    NoRoute(Vec<NodeId>),
}

impl Trace {
    /// The visited node sequence regardless of outcome.
    pub fn nodes(&self) -> &[NodeId] {
        match self {
            Trace::Delivered(v) | Trace::Looping(v) | Trace::NoRoute(v) => v,
        }
    }

    /// True iff delivery succeeded.
    pub fn delivered(&self) -> bool {
        matches!(self, Trace::Delivered(_))
    }
}

/// Trace the path flow `flow` takes from `src` to `dst` under `ft`,
/// following the deterministic ECMP choice, up to `max_hops` switch hops.
pub fn trace_path(
    topo: &Topology,
    ft: &ForwardingTables,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
) -> Trace {
    let mut visited = vec![src];
    // First hop: a host forwards everything to its switch.
    let mut cur = match topo.ports(src).first() {
        Some(p) => p.peer,
        None => return Trace::NoRoute(visited),
    };
    visited.push(cur);
    for _ in 0..max_hops {
        if cur == dst {
            return Trace::Delivered(visited);
        }
        let Some(port) = ft.select(cur, dst, flow) else {
            return Trace::NoRoute(visited);
        };
        let next = topo.ports(cur)[port.0 as usize].peer;
        visited.push(next);
        cur = next;
    }
    if cur == dst {
        Trace::Delivered(visited)
    } else {
        Trace::Looping(visited)
    }
}

/// A pinned (source-routed) path for a flow — the paper configures "static
/// routing on all switches so that flow paths are enforced".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinnedPath {
    /// The node sequence, host → … → host.
    pub nodes: Vec<NodeId>,
}

impl PinnedPath {
    /// Validate adjacency and endpoints against a topology.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if self.nodes.len() < 2 {
            return Err("path needs at least src and dst".into());
        }
        let first = *self.nodes.first().expect("nonempty");
        let last = *self.nodes.last().expect("nonempty");
        if topo.node(first).kind != NodeKind::Host {
            return Err(format!(
                "path must start at a host, got {}",
                topo.node(first).name
            ));
        }
        if topo.node(last).kind != NodeKind::Host {
            return Err(format!(
                "path must end at a host, got {}",
                topo.node(last).name
            ));
        }
        for w in self.nodes.windows(2) {
            if topo.port_towards(w[0], w[1]).is_none() {
                return Err(format!("{} and {} are not adjacent", w[0], w[1]));
            }
        }
        for &mid in &self.nodes[1..self.nodes.len() - 1] {
            if topo.node(mid).kind == NodeKind::Host {
                return Err("path transits a host".into());
            }
        }
        Ok(())
    }

    /// Number of switch-to-switch + host links traversed.
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The egress neighbor after `at`, if `at` is on the path (first match).
    pub fn next_after(&self, at: NodeId) -> Option<NodeId> {
        self.nodes.windows(2).find(|w| w[0] == at).map(|w| w[1])
    }
}

/// Average path stretch of `ft` relative to shortest paths, over all
/// host pairs (used to quantify the §2 cost of routing restriction).
/// Returns `(mean_stretch, max_stretch, unreachable_pairs)`.
pub fn path_stretch(topo: &Topology, ft: &ForwardingTables) -> (f64, f64, usize) {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let mut total = 0.0;
    let mut count = 0usize;
    let mut max = 0.0f64;
    let mut unreachable = 0usize;
    for &src in &hosts {
        let dist = bfs_distances(topo, src);
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            let sp = match dist[dst.0 as usize] {
                Some(d) => d as f64,
                None => {
                    unreachable += 1;
                    continue;
                }
            };
            match trace_path(topo, ft, FlowId(count as u32), src, dst, 64) {
                Trace::Delivered(nodes) => {
                    let actual = (nodes.len() - 1) as f64;
                    let stretch = actual / sp;
                    total += stretch;
                    count += 1;
                    max = max.max(stretch);
                }
                _ => unreachable += 1,
            }
        }
    }
    if count == 0 {
        (0.0, 0.0, unreachable)
    } else {
        (total / count as f64, max, unreachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree, leaf_spine, line, square, two_switch_loop, LinkSpec};

    fn spec() -> LinkSpec {
        LinkSpec::default()
    }

    #[test]
    fn shortest_path_line_routes_both_ways() {
        let b = line(3, spec());
        let ft = shortest_path_tables(&b.topo);
        let t = trace_path(&b.topo, &ft, FlowId(0), b.hosts[0], b.hosts[2], 16);
        assert!(t.delivered());
        assert_eq!(
            t.nodes(),
            &[
                b.hosts[0],
                b.switches[0],
                b.switches[1],
                b.switches[2],
                b.hosts[2]
            ]
        );
        let back = trace_path(&b.topo, &ft, FlowId(1), b.hosts[2], b.hosts[0], 16);
        assert!(back.delivered());
    }

    #[test]
    fn shortest_path_all_pairs_deliver_in_fat_tree() {
        let b = fat_tree(4, spec());
        let ft = shortest_path_tables(&b.topo);
        let mut f = 0;
        for &s in &b.hosts {
            for &d in &b.hosts {
                if s == d {
                    continue;
                }
                let t = trace_path(&b.topo, &ft, FlowId(f), s, d, 16);
                assert!(t.delivered(), "{s}->{d} failed: {t:?}");
                f += 1;
            }
        }
    }

    #[test]
    fn up_down_paths_are_valley_free_in_fat_tree() {
        let b = fat_tree(4, spec());
        let ft = up_down_tables(&b.topo);
        let tier = |n: NodeId| b.topo.node(n).tier.unwrap();
        let mut f = 0;
        for &s in &b.hosts {
            for &d in &b.hosts {
                if s == d {
                    continue;
                }
                let t = trace_path(&b.topo, &ft, FlowId(f), s, d, 16);
                f += 1;
                assert!(t.delivered(), "{s}->{d}: {t:?}");
                // Tiers must rise then fall: no up-move after a down-move.
                let tiers: Vec<u8> = t.nodes().iter().map(|&n| tier(n)).collect();
                let mut went_down = false;
                for w in tiers.windows(2) {
                    if w[1] < w[0] {
                        went_down = true;
                    } else if w[1] > w[0] {
                        assert!(!went_down, "valley in path {:?}", tiers);
                    }
                }
            }
        }
    }

    #[test]
    fn up_down_same_tor_stays_local() {
        let b = leaf_spine(2, 2, 2, spec());
        let ft = up_down_tables(&b.topo);
        // hosts 0 and 1 share leaf0.
        let t = trace_path(&b.topo, &ft, FlowId(0), b.hosts[0], b.hosts[1], 8);
        assert!(t.delivered());
        assert_eq!(t.nodes().len(), 3, "host-leaf-host, no spine transit");
    }

    #[test]
    fn ecmp_spreads_and_is_deterministic() {
        let b = leaf_spine(2, 4, 1, spec());
        let ft = shortest_path_tables(&b.topo);
        let leaf = b.switches[0];
        let dst = b.hosts[1];
        assert_eq!(ft.next_hops(leaf, dst).len(), 4, "4-way ECMP over spines");
        let picks: Vec<_> = (0..64)
            .map(|i| ft.select(leaf, dst, FlowId(i)).unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<_> = picks.iter().collect();
        assert!(
            distinct.len() >= 3,
            "hash should spread flows, got {distinct:?}"
        );
        let again: Vec<_> = (0..64)
            .map(|i| ft.select(leaf, dst, FlowId(i)).unwrap())
            .collect();
        assert_eq!(picks, again);
    }

    #[test]
    fn cycle_route_creates_detectable_loop() {
        let b = two_switch_loop(spec());
        let mut ft = shortest_path_tables(&b.topo);
        // Make hB-bound traffic circulate A->B->A->B...
        install_cycle_route(
            &b.topo,
            &mut ft,
            &[b.switches[0], b.switches[1]],
            b.hosts[1],
        );
        let t = trace_path(&b.topo, &ft, FlowId(0), b.hosts[0], b.hosts[1], 32);
        assert!(matches!(t, Trace::Looping(_)));
        // Unrelated destination unaffected.
        let t2 = trace_path(&b.topo, &ft, FlowId(0), b.hosts[1], b.hosts[0], 32);
        assert!(t2.delivered());
    }

    #[test]
    fn removing_route_black_holes() {
        let b = line(2, spec());
        let mut ft = shortest_path_tables(&b.topo);
        ft.remove(b.switches[0], b.hosts[1]);
        let t = trace_path(&b.topo, &ft, FlowId(0), b.hosts[0], b.hosts[1], 8);
        assert!(matches!(t, Trace::NoRoute(_)));
    }

    #[test]
    fn pinned_path_validation() {
        let b = square(spec());
        let good = PinnedPath {
            nodes: vec![
                b.hosts[0],
                b.switches[0],
                b.switches[1],
                b.switches[2],
                b.hosts[2],
            ],
        };
        good.validate(&b.topo).unwrap();
        assert_eq!(good.hop_count(), 4);
        assert_eq!(good.next_after(b.switches[1]), Some(b.switches[2]));

        let bad = PinnedPath {
            nodes: vec![b.hosts[0], b.switches[0], b.switches[2], b.hosts[2]],
        };
        assert!(bad.validate(&b.topo).is_err(), "S0 and S2 are not adjacent");

        let not_host = PinnedPath {
            nodes: vec![b.switches[0], b.switches[1], b.hosts[1]],
        };
        assert!(not_host.validate(&b.topo).is_err());
    }

    #[test]
    fn path_stretch_identity_for_shortest() {
        let b = fat_tree(4, spec());
        let ft = shortest_path_tables(&b.topo);
        let (mean, max, unreachable) = path_stretch(&b.topo, &ft);
        assert_eq!(unreachable, 0);
        assert!((mean - 1.0).abs() < 1e-9, "mean stretch {mean}");
        assert!((max - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bfs_distances_basic() {
        let b = line(3, spec());
        let d = bfs_distances(&b.topo, b.hosts[0]);
        assert_eq!(d[b.hosts[0].0 as usize], Some(0));
        assert_eq!(d[b.switches[0].0 as usize], Some(1));
        assert_eq!(d[b.switches[2].0 as usize], Some(3));
        assert_eq!(d[b.hosts[2].0 as usize], Some(4));
    }
}
