//! The topology graph: hosts, switches, and full-duplex links.
//!
//! A [`Topology`] is a static description consumed by the routing layer and
//! by the `pfcsim-net` simulator, which instantiates one switch/host model
//! per node and two directed channels per link.

use serde::{Deserialize, Serialize};

use pfcsim_simcore::time::SimDuration;
use pfcsim_simcore::units::BitRate;

use crate::ids::{LinkId, NodeId, PortNo};

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host (traffic source/sink; one NIC port in this model).
    Host,
    /// A switch (forwards, runs PFC).
    Switch,
}

/// A node record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Dense id.
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Human-readable label for reports ("A", "tor3", "h12"…).
    pub name: String,
    /// Topology tier for tiered policies: 0 = host, 1 = ToR/leaf,
    /// 2 = aggregation/spine, 3 = core. `None` for tierless topologies.
    pub tier: Option<u8>,
}

/// A full-duplex link between two nodes (symmetric rate and delay).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Dense id.
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Port used on `a`.
    pub a_port: PortNo,
    /// Port used on `b`.
    pub b_port: PortNo,
    /// Line rate per direction.
    pub rate: BitRate,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

/// A port as seen from its owning node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortRef {
    /// Local port number.
    pub port: PortNo,
    /// Link this port attaches.
    pub link: LinkId,
    /// Node at the other end.
    pub peer: NodeId,
    /// Port number at the other end.
    pub peer_port: PortNo,
}

/// An immutable network topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Per node, ports in attachment order.
    ports: Vec<Vec<PortRef>>,
}

impl Topology {
    /// Empty topology; use the `add_*` builders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host node; returns its id.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name, Some(0))
    }

    /// Add a switch node; returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name, None)
    }

    /// Add a switch with an explicit tier (1 = leaf … 3 = core).
    pub fn add_switch_tiered(&mut self, name: impl Into<String>, tier: u8) -> NodeId {
        self.add_node(NodeKind::Switch, name, Some(tier))
    }

    fn add_node(&mut self, kind: NodeKind, name: impl Into<String>, tier: Option<u8>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
            tier,
        });
        self.ports.push(Vec::new());
        id
    }

    /// Connect two nodes with a full-duplex link; returns its id.
    ///
    /// # Panics
    /// Panics on self-loops or unknown nodes. Parallel links are allowed
    /// (each gets its own ports).
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate: BitRate, delay: SimDuration) -> LinkId {
        assert!(a != b, "self-loop links are not allowed");
        assert!((a.0 as usize) < self.nodes.len(), "unknown node {a}");
        assert!((b.0 as usize) < self.nodes.len(), "unknown node {b}");
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        let a_port = PortNo(u16::try_from(self.ports[a.0 as usize].len()).expect("too many ports"));
        let b_port = PortNo(u16::try_from(self.ports[b.0 as usize].len()).expect("too many ports"));
        self.links.push(Link {
            id,
            a,
            b,
            a_port,
            b_port,
            rate,
            delay,
        });
        self.ports[a.0 as usize].push(PortRef {
            port: a_port,
            link: id,
            peer: b,
            peer_port: b_port,
        });
        self.ports[b.0 as usize].push(PortRef {
            port: b_port,
            link: id,
            peer: a,
            peer_port: a_port,
        });
        id
    }

    /// All nodes, id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Ports of `node` in attachment order.
    pub fn ports(&self, node: NodeId) -> &[PortRef] {
        &self.ports[node.0 as usize]
    }

    /// The port on `node` that faces `peer`, if any (first match for
    /// parallel links).
    pub fn port_towards(&self, node: NodeId, peer: NodeId) -> Option<PortRef> {
        self.ports[node.0 as usize]
            .iter()
            .copied()
            .find(|p| p.peer == peer)
    }

    /// Iterator over host ids.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
    }

    /// Iterator over switch ids.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .map(|n| n.id)
    }

    /// Find a node by its label.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Check basic structural invariants (used by tests and builders).
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.0 as usize != i {
                return Err(format!("node id {} at index {i}", n.id));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.0 as usize != i {
                return Err(format!("link id {} at index {i}", l.id));
            }
            let pa = self.ports[l.a.0 as usize]
                .get(l.a_port.0 as usize)
                .ok_or_else(|| format!("{}: missing port {} on {}", l.id, l.a_port, l.a))?;
            if pa.link != l.id || pa.peer != l.b {
                return Err(format!("{}: inconsistent port record on {}", l.id, l.a));
            }
            let pb = self.ports[l.b.0 as usize]
                .get(l.b_port.0 as usize)
                .ok_or_else(|| format!("{}: missing port {} on {}", l.id, l.b_port, l.b))?;
            if pb.link != l.id || pb.peer != l.a {
                return Err(format!("{}: inconsistent port record on {}", l.id, l.b));
            }
        }
        for n in &self.nodes {
            if n.kind == NodeKind::Host && self.ports[n.id.0 as usize].len() > 1 {
                return Err(format!("host {} has multiple ports", n.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate() -> BitRate {
        BitRate::from_gbps(40)
    }
    fn delay() -> SimDuration {
        SimDuration::from_us(1)
    }

    #[test]
    fn build_small_topology() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let l1 = t.connect(h1, s1, rate(), delay());
        let l2 = t.connect(s1, s2, rate(), delay());
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.node(h1).kind, NodeKind::Host);
        assert_eq!(t.link(l1).a, h1);
        assert_eq!(t.link(l2).rate, rate());
        assert_eq!(t.ports(s1).len(), 2);
        assert_eq!(t.ports(h1).len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn port_numbering_is_attachment_order() {
        let mut t = Topology::new();
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s3 = t.add_switch("s3");
        t.connect(s1, s2, rate(), delay());
        t.connect(s1, s3, rate(), delay());
        let ports = t.ports(s1);
        assert_eq!(ports[0].port, PortNo(0));
        assert_eq!(ports[0].peer, s2);
        assert_eq!(ports[1].port, PortNo(1));
        assert_eq!(ports[1].peer, s3);
        assert_eq!(t.port_towards(s1, s3).unwrap().port, PortNo(1));
        assert_eq!(t.port_towards(s2, s1).unwrap().port, PortNo(0));
        assert!(t.port_towards(s2, s3).is_none());
    }

    #[test]
    fn hosts_and_switches_iterators() {
        let mut t = Topology::new();
        t.add_host("h1");
        t.add_switch("s1");
        t.add_host("h2");
        assert_eq!(t.hosts().count(), 2);
        assert_eq!(t.switches().count(), 1);
        assert_eq!(t.find("h2"), Some(NodeId(2)));
        assert_eq!(t.find("nope"), None);
    }

    #[test]
    fn parallel_links_get_distinct_ports() {
        let mut t = Topology::new();
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let l1 = t.connect(s1, s2, rate(), delay());
        let l2 = t.connect(s1, s2, rate(), delay());
        assert_ne!(l1, l2);
        assert_eq!(t.ports(s1).len(), 2);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = Topology::new();
        let s = t.add_switch("s");
        t.connect(s, s, rate(), delay());
    }

    #[test]
    fn validate_catches_multihomed_host() {
        let mut t = Topology::new();
        let h = t.add_host("h");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        t.connect(h, s1, rate(), delay());
        t.connect(h, s2, rate(), delay());
        assert!(t.validate().is_err());
    }
}
