//! Property tests for the analysis algorithms: SCC/cycle consistency,
//! BDG construction invariants, and boundary-model algebra.

use proptest::prelude::*;

use pfcsim_core::bdg::BufferDependencyGraph;
use pfcsim_core::boundary::BoundaryModel;
use pfcsim_core::cycles::elementary_cycles;
use pfcsim_core::scc::{has_cycle, tarjan_scc};
use pfcsim_simcore::units::BitRate;
use pfcsim_topo::builders::{ring, LinkSpec};
use pfcsim_topo::ids::{NodeId, Priority};

fn random_digraph(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        let (u, v) = (u % n, v % n);
        if !adj[u].contains(&v) {
            adj[u].push(v);
        }
    }
    adj
}

proptest! {
    /// A graph has a cycle iff it has at least one elementary cycle, and
    /// every reported elementary cycle is a real closed walk.
    #[test]
    fn cycles_and_scc_agree(
        n in 1usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..30),
    ) {
        let adj = random_digraph(n, &edges);
        let cycles = elementary_cycles(&adj, 100_000);
        prop_assert_eq!(has_cycle(&adj), !cycles.is_empty());
        for c in &cycles {
            for i in 0..c.len() {
                let (u, v) = (c[i], c[(i + 1) % c.len()]);
                prop_assert!(adj[u].contains(&v), "cycle edge {u}->{v} missing");
            }
            // Elementary: all vertices distinct.
            let set: std::collections::BTreeSet<_> = c.iter().collect();
            prop_assert_eq!(set.len(), c.len());
        }
    }

    /// SCC partition: every vertex appears exactly once.
    #[test]
    fn scc_is_a_partition(
        n in 1usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..40),
    ) {
        let adj = random_digraph(n, &edges);
        let comps = tarjan_scc(&adj);
        let mut seen = vec![0u32; n];
        for c in &comps {
            for &v in c {
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "partition violated: {seen:?}");
    }

    /// Adding a path to a BDG only grows it, and reversing a simple chain
    /// of flows around a ring produces a cycle iff the chain closes.
    #[test]
    fn bdg_growth_monotone(k in 2usize..8, close in any::<bool>()) {
        let b = ring(8, LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        // k consecutive 2-switch-overlap flows around the 8-ring; closing
        // the chain requires wrapping all the way round.
        let seg = |i: usize| -> Vec<NodeId> {
            vec![
                h[(2 * i) % 8],
                s[(2 * i) % 8],
                s[(2 * i + 1) % 8],
                s[(2 * i + 2) % 8],
                s[(2 * i + 3) % 8],
                s[(2 * i + 4) % 8],
                h[(2 * i + 4) % 8],
            ]
        };
        let mut g = BufferDependencyGraph::new();
        let mut last_edges = 0;
        let count = if close { 4 } else { k.min(3) };
        for i in 0..count {
            g.add_path(&b.topo, &seg(i), Priority::DEFAULT, None);
            prop_assert!(g.edge_count() >= last_edges, "edges shrank");
            last_edges = g.edge_count();
        }
        // The 4-segment chain wraps the ring: cyclic. Fewer: acyclic.
        prop_assert_eq!(g.has_cbd(), close);
    }

    /// Boundary model algebra: threshold scales linearly in B and n, and
    /// inversely in TTL; safe_rate is monotone in margin.
    #[test]
    fn boundary_model_scaling(
        n in 1u32..10,
        gbps in 1u64..400,
        ttl in 1u32..128,
        m1 in 0.0f64..1.0,
        m2 in 0.0f64..1.0,
    ) {
        let b = BitRate::from_gbps(gbps);
        let m = BoundaryModel::new(n, b, ttl);
        let t = m.deadlock_threshold();
        // Doubling bandwidth doubles the threshold (up to truncation).
        let m2x = BoundaryModel::new(n, BitRate::from_gbps(gbps * 2), ttl);
        let diff = (m2x.deadlock_threshold().bps() as i128 - 2 * t.bps() as i128).unsigned_abs();
        prop_assert!(diff <= 1, "2x bandwidth scaling off by {diff}");
        // Doubling TTL halves it (within integer truncation).
        let mhalf = BoundaryModel::new(n, b, ttl * 2);
        prop_assert!(mhalf.deadlock_threshold().bps() <= t.bps() / 2 + 1);
        // safe_rate monotone in margin.
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(m.safe_rate(lo) <= m.safe_rate(hi));
        // Predicts-deadlock is consistent with the threshold.
        prop_assert!(!m.predicts_deadlock(t));
        prop_assert!(m.predicts_deadlock(BitRate::from_bps(t.bps() + 1)));
    }
}
