//! Buffer dependency graphs (BDG) — the paper's analytic object.
//!
//! Vertices are receiving (ingress) buffers `(switch, ingress port,
//! priority)`; a directed edge `q1 → q2` means packets held in `q1` are
//! forwarded into `q2`, i.e. *whether `q1` can drain depends on `q2`
//! having room* (paper §3.1: "Switch A's dependency on switch B means
//! whether switch A can move the packets in its receiving buffer RX1 to
//! egress depends on switch B's buffer RX1").
//!
//! A **cyclic buffer dependency (CBD)** — a cycle in this graph — is the
//! *necessary* condition for PFC deadlock (Dally & Seitz); the paper's
//! whole point is that it is not *sufficient*.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use pfcsim_net::flow::{FlowSpec, RouteKind};
use pfcsim_simcore::units::Bytes;
use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::{NodeId, PortNo, Priority};
use pfcsim_topo::routing::{trace_path, ForwardingTables};

use crate::cycles::elementary_cycles;
use crate::scc::{has_cycle, tarjan_scc};

/// One receiving buffer: the unit PFC pauses on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RxQueue {
    /// The switch owning the buffer.
    pub node: NodeId,
    /// The ingress port.
    pub port: PortNo,
    /// The traffic class.
    pub priority: Priority,
}

/// A buffer dependency graph.
#[derive(Debug, Clone, Default)]
pub struct BufferDependencyGraph {
    verts: Vec<RxQueue>,
    index: BTreeMap<RxQueue, usize>,
    edges: Vec<BTreeSet<usize>>,
}

impl BufferDependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a queue, returning its dense index.
    pub fn add_queue(&mut self, q: RxQueue) -> usize {
        if let Some(&i) = self.index.get(&q) {
            return i;
        }
        let i = self.verts.len();
        self.verts.push(q);
        self.index.insert(q, i);
        self.edges.push(BTreeSet::new());
        i
    }

    /// Add a dependency edge.
    pub fn add_dependency(&mut self, from: RxQueue, to: RxQueue) {
        let f = self.add_queue(from);
        let t = self.add_queue(to);
        self.edges[f].insert(t);
    }

    /// All queues.
    pub fn queues(&self) -> &[RxQueue] {
        &self.verts
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True iff no queues recorded.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(BTreeSet::len).sum()
    }

    /// Direct dependencies of `q`.
    pub fn dependencies_of(&self, q: RxQueue) -> Vec<RxQueue> {
        match self.index.get(&q) {
            Some(&i) => self.edges[i].iter().map(|&j| self.verts[j]).collect(),
            None => Vec::new(),
        }
    }

    fn adj(&self) -> Vec<Vec<usize>> {
        self.edges
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect()
    }

    /// Does a cyclic buffer dependency exist?
    pub fn has_cbd(&self) -> bool {
        has_cycle(&self.adj())
    }

    /// Strongly connected components with more than one queue (the CBD
    /// cores).
    pub fn cbd_components(&self) -> Vec<Vec<RxQueue>> {
        tarjan_scc(&self.adj())
            .into_iter()
            .filter(|c| c.len() > 1)
            .map(|c| c.into_iter().map(|i| self.verts[i]).collect())
            .collect()
    }

    /// Up to `limit` elementary dependency cycles (the Figs. 2(b)/3(b)
    /// rings).
    pub fn cbd_cycles(&self, limit: usize) -> Vec<Vec<RxQueue>> {
        elementary_cycles(&self.adj(), limit)
            .into_iter()
            .map(|c| c.into_iter().map(|i| self.verts[i]).collect())
            .collect()
    }

    /// Queues participating in at least one cycle.
    pub fn cyclic_queues(&self) -> BTreeSet<RxQueue> {
        self.cbd_components().into_iter().flatten().collect()
    }

    /// Build from explicit node paths (host → switches… → host), one per
    /// flow, with per-flow priority. `class_ladder` applies the
    /// structured-buffer-pool remap (class = min(hop, n−1)).
    pub fn from_paths<'a>(
        topo: &Topology,
        paths: impl IntoIterator<Item = (&'a [NodeId], Priority)>,
        class_ladder: Option<u8>,
    ) -> Self {
        let mut g = Self::new();
        for (nodes, prio) in paths {
            g.add_path(topo, nodes, prio, class_ladder);
        }
        g
    }

    /// Add one flow path's dependencies.
    pub fn add_path(
        &mut self,
        topo: &Topology,
        nodes: &[NodeId],
        prio: Priority,
        class_ladder: Option<u8>,
    ) {
        // Collect the RX queue at every switch along the path.
        let mut rxs: Vec<RxQueue> = Vec::new();
        let mut hop: u8 = 0;
        for w in nodes.windows(2) {
            let (from, to) = (w[0], w[1]);
            if topo.node(to).kind != NodeKind::Switch {
                continue; // final host hop has no PFC ingress of interest
            }
            // The ingress port of `to` that receives from `from`.
            let ingress = topo
                .port_towards(to, from)
                .unwrap_or_else(|| panic!("{from} and {to} are not adjacent"))
                .port;
            let class = match class_ladder {
                Some(n) => Priority(hop.min(n - 1)),
                None => prio,
            };
            rxs.push(RxQueue {
                node: to,
                port: ingress,
                priority: class,
            });
            hop = hop.saturating_add(1);
        }
        for w in rxs.windows(2) {
            self.add_dependency(w[0], w[1]);
        }
        // Register single-switch paths too.
        if rxs.len() == 1 {
            self.add_queue(rxs[0]);
        }
    }

    /// Build by tracing `specs` through `tables` (pinned flows use their
    /// pinned path; table flows are traced with a hop cap of their TTL, so
    /// a routing loop contributes one full ring of dependencies).
    pub fn from_specs(topo: &Topology, tables: &ForwardingTables, specs: &[FlowSpec]) -> Self {
        let mut g = Self::new();
        for spec in specs {
            match &spec.route {
                RouteKind::Pinned(p) => {
                    g.add_path(topo, &p.nodes, spec.priority, None);
                }
                RouteKind::Tables => {
                    let trace =
                        trace_path(topo, tables, spec.id, spec.src, spec.dst, spec.ttl as usize);
                    g.add_path(topo, trace.nodes(), spec.priority, None);
                }
            }
        }
        g
    }

    /// Sum of XOFF thresholds needed to fill every queue of a cycle — the
    /// minimum wedged bytes a deadlock on this cycle implies.
    pub fn cycle_wedged_bytes(cycle: &[RxQueue], xoff: Bytes) -> Bytes {
        Bytes::new(xoff.get() * cycle.len() as u64)
    }

    /// Graphviz DOT rendering: queues as nodes (named via `label`,
    /// typically the switch's human name), cyclic queues highlighted.
    pub fn to_dot(&self, label: impl Fn(&RxQueue) -> String) -> String {
        let cyclic = self.cyclic_queues();
        let mut out = String::from("digraph bdg {\n  rankdir=LR;\n");
        for (i, q) in self.verts.iter().enumerate() {
            let style = if cyclic.contains(q) {
                " style=filled fillcolor=salmon"
            } else {
                ""
            };
            out.push_str(&format!("  q{i} [label=\"{}\"{style}];\n", label(q)));
        }
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                out.push_str(&format!("  q{i} -> q{j};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_net::flow::FlowSpec;
    use pfcsim_topo::builders::{fat_tree, line, square, two_switch_loop, LinkSpec};
    use pfcsim_topo::routing::{install_cycle_route, shortest_path_tables, up_down_tables};

    fn prio() -> Priority {
        Priority::DEFAULT
    }

    #[test]
    fn line_path_is_acyclic_chain() {
        let b = line(3, LinkSpec::default());
        let path = [
            b.hosts[0],
            b.switches[0],
            b.switches[1],
            b.switches[2],
            b.hosts[2],
        ];
        let g = BufferDependencyGraph::from_paths(&b.topo, [(path.as_slice(), prio())], None);
        assert_eq!(g.len(), 3, "one RX per switch");
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_cbd());
        assert!(g.cbd_components().is_empty());
    }

    #[test]
    fn square_two_flows_form_the_fig3b_cycle() {
        let b = square(LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let f1 = [h[0], s[0], s[1], s[2], s[3], h[3]];
        let f2 = [h[2], s[2], s[3], s[0], s[1], h[1]];
        let g = BufferDependencyGraph::from_paths(
            &b.topo,
            [(f1.as_slice(), prio()), (f2.as_slice(), prio())],
            None,
        );
        assert!(g.has_cbd(), "Fig. 3(b): cyclic buffer dependency exists");
        let cycles = g.cbd_cycles(10);
        assert_eq!(cycles.len(), 1, "exactly the 4-ring");
        assert_eq!(cycles[0].len(), 4);
        let nodes: BTreeSet<NodeId> = cycles[0].iter().map(|q| q.node).collect();
        assert_eq!(nodes, s.iter().copied().collect());
    }

    #[test]
    fn fig4_extra_flow_leaves_cycle_unchanged() {
        // Paper: "one additional dependency ... is added, but it is outside
        // the cyclic buffer dependency. The cyclic buffer dependency itself
        // remains unchanged."
        let b = square(LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let f1 = [h[0], s[0], s[1], s[2], s[3], h[3]];
        let f2 = [h[2], s[2], s[3], s[0], s[1], h[1]];
        let f3 = [h[1], s[1], s[2], h[2]];
        let g2 = BufferDependencyGraph::from_paths(
            &b.topo,
            [(f1.as_slice(), prio()), (f2.as_slice(), prio())],
            None,
        );
        let g3 = BufferDependencyGraph::from_paths(
            &b.topo,
            [
                (f1.as_slice(), prio()),
                (f2.as_slice(), prio()),
                (f3.as_slice(), prio()),
            ],
            None,
        );
        assert_eq!(g3.cbd_cycles(10), g2.cbd_cycles(10), "same single cycle");
        assert_eq!(g3.edge_count(), g2.edge_count() + 1, "one extra edge");
    }

    #[test]
    fn routing_loop_creates_two_queue_cycle() {
        let b = two_switch_loop(LinkSpec::default());
        let mut tables = shortest_path_tables(&b.topo);
        install_cycle_route(
            &b.topo,
            &mut tables,
            &[b.switches[0], b.switches[1]],
            b.hosts[1],
        );
        let spec = FlowSpec::cbr(
            0,
            b.hosts[0],
            b.hosts[1],
            pfcsim_simcore::units::BitRate::from_gbps(1),
        )
        .with_ttl(16);
        let g = BufferDependencyGraph::from_specs(&b.topo, &tables, &[spec]);
        assert!(g.has_cbd(), "Fig. 2(b)");
        let cycles = g.cbd_cycles(10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2, "A<->B two-ring");
    }

    #[test]
    fn up_down_fat_tree_is_cbd_free_over_all_pairs() {
        let b = fat_tree(4, LinkSpec::default());
        let tables = up_down_tables(&b.topo);
        let mut specs = Vec::new();
        let mut id = 0;
        for &s in &b.hosts {
            for &d in &b.hosts {
                if s != d {
                    specs.push(FlowSpec::infinite(id, s, d));
                    id += 1;
                }
            }
        }
        let g = BufferDependencyGraph::from_specs(&b.topo, &tables, &specs);
        assert!(!g.has_cbd(), "valley-free routing must be deadlock-free");
        assert!(g.len() > 50, "plenty of queues involved: {}", g.len());
    }

    #[test]
    fn class_ladder_breaks_the_square_cycle() {
        let b = square(LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let f1 = [h[0], s[0], s[1], s[2], s[3], h[3]];
        let f2 = [h[2], s[2], s[3], s[0], s[1], h[1]];
        // 4 classes >= max hop count (4 switch hops): provably acyclic.
        let g = BufferDependencyGraph::from_paths(
            &b.topo,
            [(f1.as_slice(), prio()), (f2.as_slice(), prio())],
            Some(4),
        );
        assert!(!g.has_cbd(), "hop-laddered classes climb, never cycle");
        // 1 class = no ladder: cycle returns.
        let g1 = BufferDependencyGraph::from_paths(
            &b.topo,
            [(f1.as_slice(), prio()), (f2.as_slice(), prio())],
            Some(1),
        );
        assert!(g1.has_cbd());
    }

    #[test]
    fn insufficient_ladder_classes_leave_cycles() {
        // 8-switch ring; four flows, each spanning five switches and
        // overlapping the next by two, so their RX chains hand over and
        // wrap the ring (the generalisation of Fig. 3's construction).
        use pfcsim_topo::builders::ring;
        let b = ring(8, LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let paths: Vec<Vec<NodeId>> = (0..4)
            .map(|i| {
                let base = 2 * i;
                let mut p = vec![h[base]];
                for k in 0..5 {
                    p.push(s[(base + k) % 8]);
                }
                p.push(h[(base + 4) % 8]);
                p
            })
            .collect();
        let with_ladder = |ladder: Option<u8>| {
            BufferDependencyGraph::from_paths(
                &b.topo,
                paths.iter().map(|p| (p.as_slice(), prio())),
                ladder,
            )
        };
        assert!(with_ladder(None).has_cbd(), "flat classes: full ring CBD");
        assert!(
            !with_ladder(Some(4)).has_cbd(),
            "4 classes cover the 4 RX hops of each path: acyclic"
        );
        assert!(
            with_ladder(Some(2)).has_cbd(),
            "2 classes saturate at class 1, which still wraps the ring"
        );
    }

    #[test]
    fn dot_export_marks_cycles() {
        let b = square(LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let f1 = [h[0], s[0], s[1], s[2], s[3], h[3]];
        let f2 = [h[2], s[2], s[3], s[0], s[1], h[1]];
        let g = BufferDependencyGraph::from_paths(
            &b.topo,
            [(f1.as_slice(), prio()), (f2.as_slice(), prio())],
            None,
        );
        let dot = g.to_dot(|q| b.topo.node(q.node).name.clone());
        assert!(dot.starts_with("digraph bdg {"));
        assert_eq!(dot.matches("->").count(), g.edge_count());
        // The four cyclic queues are highlighted.
        assert_eq!(dot.matches("salmon").count(), 4);
        assert!(dot.contains("label=\"S0\""));
    }

    #[test]
    fn dependencies_of_reports_direct_edges() {
        let b = line(2, LinkSpec::default());
        let path = [b.hosts[0], b.switches[0], b.switches[1], b.hosts[1]];
        let g = BufferDependencyGraph::from_paths(&b.topo, [(path.as_slice(), prio())], None);
        let q0 = RxQueue {
            node: b.switches[0],
            port: b.topo.port_towards(b.switches[0], b.hosts[0]).unwrap().port,
            priority: prio(),
        };
        let deps = g.dependencies_of(q0);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].node, b.switches[1]);
        assert!(g
            .dependencies_of(RxQueue {
                node: b.switches[1],
                port: PortNo(99),
                priority: prio()
            })
            .is_empty());
    }
}
