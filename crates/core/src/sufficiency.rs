//! Sufficiency analysis: connects simulator measurements back to the
//! paper's claims about *when* a CBD actually becomes a deadlock.
//!
//! The paper's observations, encoded as checkable analyses:
//!
//! * Fig. 3: CBD present, pauses occur, yet some cycle links never pause —
//!   no deadlock possible ("no packet will be paused permanently").
//! * Fig. 4: all cycle links pause, overlap simultaneously, deadlock.
//! * Fig. 5 (zoomed): with a 2 Gbps limiter "four links are never paused
//!   simultaneously at packet level" — simultaneity of pause over the
//!   whole cycle is the proximate trigger.

use serde::{Deserialize, Serialize};

use pfcsim_net::stats::{NetStats, PauseKey};
use pfcsim_simcore::time::{SimDuration, SimTime};
use pfcsim_topo::ids::{NodeId, Priority};

/// Pause-overlap analysis of one dependency cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapAnalysis {
    /// The analysed cycle's channels, as (upstream, downstream) pairs.
    pub channels: Vec<(NodeId, NodeId)>,
    /// Per-channel PAUSE frame counts, same order as `channels`.
    pub pause_counts: Vec<usize>,
    /// Number of channels that were ever paused.
    pub channels_ever_paused: usize,
    /// Maximum number of cycle channels paused at one instant.
    pub max_simultaneous: usize,
    /// Total time during which *every* cycle channel was paused at once.
    pub all_paused_time: SimDuration,
    /// First instant at which all channels were simultaneously paused.
    pub first_all_paused: Option<SimTime>,
}

impl OverlapAnalysis {
    /// Whether the full-cycle simultaneous-pause precondition ever held.
    pub fn all_paused_simultaneously(&self) -> bool {
        self.first_all_paused.is_some()
    }
}

/// Analyse pause overlap on `cycle` (a ring of switches; channel `i` is
/// `cycle[i] → cycle[(i+1) % len]`) for one priority, over `[0, end]`.
pub fn analyze_cycle_overlap(
    stats: &NetStats,
    cycle: &[NodeId],
    priority: Priority,
    end: SimTime,
) -> OverlapAnalysis {
    let channels: Vec<(NodeId, NodeId)> = (0..cycle.len())
        .map(|i| (cycle[i], cycle[(i + 1) % cycle.len()]))
        .collect();
    analyze_channels_overlap(stats, &channels, priority, end)
}

/// Analyse pause overlap on an explicit channel list.
pub fn analyze_channels_overlap(
    stats: &NetStats,
    channels: &[(NodeId, NodeId)],
    priority: Priority,
    end: SimTime,
) -> OverlapAnalysis {
    let mut pause_counts = Vec::with_capacity(channels.len());
    // Sweep events: (time, delta). Closing at `end` for open intervals.
    let mut events: Vec<(SimTime, i32)> = Vec::new();
    let mut ever = 0usize;
    for &(from, to) in channels {
        let key = PauseKey { from, to, priority };
        match stats.pause.get(&key) {
            Some(log) => {
                pause_counts.push(log.events.count());
                if log.events.count() > 0 {
                    ever += 1;
                }
                for &(start, stop) in log.intervals.intervals() {
                    let stop = stop.unwrap_or(end).min(end);
                    if stop > start {
                        events.push((start, 1));
                        events.push((stop, -1));
                    }
                }
            }
            None => pause_counts.push(0),
        }
    }
    // Sort by time; at equal times apply closes before opens so touching
    // intervals don't fake an overlap.
    events.sort_by_key(|&(t, d)| (t, d));
    let n = channels.len();
    let mut depth = 0i32;
    let mut max_simultaneous = 0usize;
    let mut all_paused_time = SimDuration::ZERO;
    let mut first_all_paused = None;
    let mut all_since: Option<SimTime> = None;
    for (t, d) in events {
        if d > 0 {
            depth += d;
            max_simultaneous = max_simultaneous.max(depth as usize);
            if depth as usize == n && all_since.is_none() {
                all_since = Some(t);
                first_all_paused.get_or_insert(t);
            }
        } else {
            if depth as usize == n {
                if let Some(since) = all_since.take() {
                    all_paused_time += t - since;
                }
            }
            depth += d;
        }
    }
    if let Some(since) = all_since {
        // Still fully paused at the end of the window.
        if end > since {
            all_paused_time += end - since;
        }
    }
    OverlapAnalysis {
        channels: channels.to_vec(),
        pause_counts,
        channels_ever_paused: ever,
        max_simultaneous,
        all_paused_time,
        first_all_paused,
    }
}

/// Pause blast radius: how far congestion propagated through the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlastRadius {
    /// Distinct channels that ever paused.
    pub channels_paused: usize,
    /// Of those, channels between two switches (fabric damage) — host
    /// uplink pauses are the intended near-source back-pressure.
    pub fabric_channels_paused: usize,
    /// Pause onset order: (channel, first pause instant), earliest first.
    pub onset: Vec<((NodeId, NodeId), SimTime)>,
}

/// Measure the pause blast radius of a run. `is_switch` classifies node
/// ids (pass `|n| topo.node(n).kind == NodeKind::Switch`).
pub fn blast_radius(stats: &NetStats, is_switch: impl Fn(NodeId) -> bool) -> BlastRadius {
    let mut onset: Vec<((NodeId, NodeId), SimTime)> = stats
        .pause
        .iter()
        .filter_map(|(k, log)| log.events.times().first().map(|&t| ((k.from, k.to), t)))
        .collect();
    onset.sort_by_key(|&(_, t)| t);
    let channels: std::collections::BTreeSet<(NodeId, NodeId)> =
        onset.iter().map(|&(c, _)| c).collect();
    let fabric = channels
        .iter()
        .filter(|&&(from, to)| is_switch(from) && is_switch(to))
        .count();
    BlastRadius {
        channels_paused: channels.len(),
        fabric_channels_paused: fabric,
        onset,
    }
}

/// One row of the paper's core argument: for a scenario, whether CBD was
/// present and whether deadlock actually formed. Accumulating these rows
/// over the case studies demonstrates "necessary but not sufficient".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SufficiencyRow {
    /// Scenario label.
    pub scenario: String,
    /// Cyclic buffer dependency present in the workload's BDG?
    pub cbd: bool,
    /// Did the simulator deadlock?
    pub deadlocked: bool,
}

/// Summarise rows: CBD without deadlock proves insufficiency; deadlock
/// without CBD would falsify necessity (and must never appear).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SufficiencyVerdict {
    /// Scenarios with CBD and deadlock.
    pub cbd_and_deadlock: usize,
    /// Scenarios with CBD but no deadlock (the paper's exhibit).
    pub cbd_no_deadlock: usize,
    /// Scenarios without CBD and without deadlock.
    pub no_cbd_no_deadlock: usize,
    /// Scenarios deadlocked without CBD — must be zero (necessity).
    pub deadlock_without_cbd: usize,
}

impl SufficiencyVerdict {
    /// Tally rows.
    pub fn from_rows(rows: &[SufficiencyRow]) -> Self {
        let mut v = SufficiencyVerdict::default();
        for r in rows {
            match (r.cbd, r.deadlocked) {
                (true, true) => v.cbd_and_deadlock += 1,
                (true, false) => v.cbd_no_deadlock += 1,
                (false, false) => v.no_cbd_no_deadlock += 1,
                (false, true) => v.deadlock_without_cbd += 1,
            }
        }
        v
    }

    /// CBD was demonstrated insufficient (some CBD case did not deadlock).
    pub fn demonstrates_insufficiency(&self) -> bool {
        self.cbd_no_deadlock > 0
    }

    /// Necessity held (no deadlock ever formed without CBD).
    pub fn necessity_held(&self) -> bool {
        self.deadlock_without_cbd == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_net::stats::PauseLog;

    fn key(from: u32, to: u32) -> PauseKey {
        PauseKey {
            from: NodeId(from),
            to: NodeId(to),
            priority: Priority::DEFAULT,
        }
    }

    fn stats_with(intervals: &[(u32, u32, &[(u64, Option<u64>)])]) -> NetStats {
        let mut stats = NetStats::default();
        for &(from, to, spans) in intervals {
            let mut log = PauseLog::default();
            for &(start, stop) in spans {
                log.events.record(SimTime::from_us(start));
                log.intervals.open(SimTime::from_us(start));
                if let Some(stop) = stop {
                    log.intervals.close(SimTime::from_us(stop));
                }
            }
            stats.pause.insert(key(from, to), log);
        }
        stats
    }

    #[test]
    fn disjoint_pauses_never_overlap() {
        // Fig. 3 shape: only two of four channels pause, alternating.
        let stats = stats_with(&[
            (1, 2, &[(10, Some(20)), (40, Some(50))]),
            (3, 0, &[(25, Some(35)), (60, Some(70))]),
        ]);
        let cycle = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let a = analyze_cycle_overlap(&stats, &cycle, Priority::DEFAULT, SimTime::from_us(100));
        assert_eq!(a.channels_ever_paused, 2);
        assert_eq!(a.max_simultaneous, 1);
        assert!(!a.all_paused_simultaneously());
        assert_eq!(a.all_paused_time, SimDuration::ZERO);
        assert_eq!(a.pause_counts, vec![0, 2, 0, 2]);
    }

    #[test]
    fn full_overlap_detected_with_open_intervals() {
        // Fig. 4 shape: all four paused, last intervals never close.
        let stats = stats_with(&[
            (0, 1, &[(10, None)]),
            (1, 2, &[(12, None)]),
            (2, 3, &[(14, None)]),
            (3, 0, &[(16, None)]),
        ]);
        let cycle = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let a = analyze_cycle_overlap(&stats, &cycle, Priority::DEFAULT, SimTime::from_us(100));
        assert_eq!(a.max_simultaneous, 4);
        assert_eq!(a.first_all_paused, Some(SimTime::from_us(16)));
        assert_eq!(a.all_paused_time, SimDuration::from_us(84));
    }

    #[test]
    fn touching_intervals_do_not_count_as_overlap() {
        let stats = stats_with(&[(0, 1, &[(10, Some(20))]), (1, 0, &[(20, Some(30))])]);
        let cycle = [NodeId(0), NodeId(1)];
        let a = analyze_cycle_overlap(&stats, &cycle, Priority::DEFAULT, SimTime::from_us(50));
        assert_eq!(a.max_simultaneous, 1, "close sorts before open at t=20");
    }

    #[test]
    fn partial_overlap_measures_duration() {
        let stats = stats_with(&[(0, 1, &[(10, Some(40))]), (1, 0, &[(20, Some(30))])]);
        let cycle = [NodeId(0), NodeId(1)];
        let a = analyze_cycle_overlap(&stats, &cycle, Priority::DEFAULT, SimTime::from_us(50));
        assert_eq!(a.max_simultaneous, 2);
        assert_eq!(a.all_paused_time, SimDuration::from_us(10));
        assert_eq!(a.first_all_paused, Some(SimTime::from_us(20)));
    }

    #[test]
    fn blast_radius_counts_and_orders() {
        let stats = stats_with(&[
            (0, 1, &[(10, Some(20))]),
            (1, 2, &[(5, Some(15))]),
            (9, 0, &[(30, None)]), // host 9 -> switch 0
        ]);
        let br = blast_radius(&stats, |n| n.0 < 9);
        assert_eq!(br.channels_paused, 3);
        assert_eq!(br.fabric_channels_paused, 2);
        assert_eq!(br.onset[0].0, (NodeId(1), NodeId(2)), "earliest first");
        assert_eq!(br.onset[0].1, SimTime::from_us(5));
    }

    #[test]
    fn sufficiency_verdict_tallies() {
        let rows = vec![
            SufficiencyRow {
                scenario: "fig3".into(),
                cbd: true,
                deadlocked: false,
            },
            SufficiencyRow {
                scenario: "fig4".into(),
                cbd: true,
                deadlocked: true,
            },
            SufficiencyRow {
                scenario: "line".into(),
                cbd: false,
                deadlocked: false,
            },
        ];
        let v = SufficiencyVerdict::from_rows(&rows);
        assert!(v.demonstrates_insufficiency());
        assert!(v.necessity_held());
        assert_eq!(v.cbd_and_deadlock, 1);
        assert_eq!(v.cbd_no_deadlock, 1);
        assert_eq!(v.no_cbd_no_deadlock, 1);
    }
}
