//! # pfcsim-core — the deadlock theory of Hu et al. (HotNets 2016)
//!
//! The paper's analytic contribution, as a library:
//!
//! * [`bdg`] — buffer dependency graphs over RX queues, built from flow
//!   paths or traced through forwarding tables (Figures 2(b)/3(b)/4(b));
//! * [`scc`], [`cycles`] — Tarjan SCCs and Johnson elementary-cycle
//!   enumeration for CBD detection and witnesses;
//! * [`boundary`] — the boundary-state model (Table 1, Eq. 1–3):
//!   `deadlock ⇔ r > n·B/TTL` for a routing loop, plus the §4 TTL-class
//!   and rate-limit refinements;
//! * [`freedom`] — Dally–Seitz deadlock-freedom verification of routing
//!   configurations (all-pairs and per-workload), valley-free checking;
//! * [`sufficiency`] — post-simulation analyses of the paper's central
//!   claim: CBD is necessary but *not* sufficient; the proximate trigger
//!   is simultaneous pause of a whole dependency cycle.
//!
//! ```
//! use pfcsim_core::prelude::*;
//! use pfcsim_simcore::units::BitRate;
//!
//! // The paper's testbed point: 2-switch loop, 40 Gbps, TTL 16.
//! let m = BoundaryModel::new(2, BitRate::from_gbps(40), 16);
//! assert_eq!(m.deadlock_threshold(), BitRate::from_gbps(5));
//! assert!(m.predicts_deadlock(BitRate::from_gbps(6)));
//! ```

#![warn(missing_docs)]

pub mod bdg;
pub mod boundary;
pub mod cycles;
pub mod fluid;
pub mod freedom;
pub mod scc;
pub mod sufficiency;

/// Common imports.
pub mod prelude {
    pub use crate::bdg::{BufferDependencyGraph, RxQueue};
    pub use crate::boundary::BoundaryModel;
    pub use crate::cycles::elementary_cycles;
    pub use crate::fluid::{
        ChannelKey, FluidConfig, FluidFlow, FluidNetwork, FluidReport, RateSolver,
    };
    pub use crate::freedom::{
        verify_all_pairs, verify_valley_free, verify_workload, FreedomViolation,
    };
    pub use crate::scc::{has_cycle, tarjan_scc};
    pub use crate::sufficiency::{
        analyze_channels_overlap, analyze_cycle_overlap, blast_radius, BlastRadius,
        OverlapAnalysis, SufficiencyRow, SufficiencyVerdict,
    };
}
