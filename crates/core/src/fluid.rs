//! A fluid (flow-level) model of PFC networks — the analysis tool the
//! paper names as future work ("we are currently working on analysis
//! tools, e.g., a fluid model that can describe PFC behavior", §3.3).
//!
//! The model integrates per-queue fluid levels in discrete time: flows
//! stream along their paths, each egress channel's capacity is divided
//! max–min between the ingress ports contending for it, and PFC pause
//! toggles on XOFF/XON level crossings of the downstream ingress queue.
//!
//! Its purpose here is **calibrated failure**: the fluid model accurately
//! reproduces the stable-state throughputs of the paper's scenarios
//! (B/2 each in Figs. 3–4) while predicting *no fabric pauses and no
//! deadlock for either* — making precise the paper's claim that
//! "flow-level stable state analysis cannot capture such behavior" and
//! that deadlock lives strictly at the packet level.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use pfcsim_simcore::units::{BitRate, Bytes};
use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::{FlowId, NodeId, PortNo};

/// One fluid flow: a demand streaming along a fixed path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidFlow {
    /// Identifier.
    pub id: FlowId,
    /// Offered rate in bits/s; `None` = infinite demand (always backlogged
    /// at the source).
    pub demand: Option<BitRate>,
    /// Node path, host → switches… → host.
    pub path: Vec<NodeId>,
}

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidConfig {
    /// Integration step (fluid time constant; 100 ns default).
    pub dt_ns: u64,
    /// PFC XOFF level (bytes).
    pub xoff: Bytes,
    /// PFC XON level (bytes).
    pub xon: Bytes,
}

impl Default for FluidConfig {
    fn default() -> Self {
        FluidConfig {
            dt_ns: 100,
            xoff: Bytes::from_kb(40),
            xon: Bytes::from_kb(20),
        }
    }
}

/// A directed channel in the fluid network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
struct Chan {
    from: NodeId,
    to: NodeId,
}

/// Results of a fluid run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidReport {
    /// Average delivered rate per flow (bits/s) over the run.
    pub throughput: BTreeMap<FlowId, f64>,
    /// Fraction of steps each fabric (switch→switch) channel spent paused.
    pub pause_fraction: BTreeMap<(NodeId, NodeId), f64>,
    /// Fraction of steps each host uplink spent paused.
    pub host_pause_fraction: BTreeMap<NodeId, f64>,
    /// Whether the final state is a fluid deadlock: a cycle of paused
    /// fabric channels whose downstream queues all hold ≥ XON bytes.
    pub deadlock: bool,
    /// Final total buffered bytes across all switch queues.
    pub final_buffered: f64,
}

/// The fluid simulator.
pub struct FluidNetwork {
    topo: Topology,
    flows: Vec<FluidFlow>,
    cfg: FluidConfig,
    /// Per flow, the queue sequence: (switch, ingress port) pairs.
    queues_of: Vec<Vec<(NodeId, PortNo)>>,
    /// Per flow, the channel sequence (host uplink, fabric hops, downlink).
    chans_of: Vec<Vec<Chan>>,
}

impl FluidNetwork {
    /// Build the model; paths are validated against the topology.
    pub fn new(topo: &Topology, flows: Vec<FluidFlow>, cfg: FluidConfig) -> Self {
        assert!(cfg.dt_ns > 0, "dt must be positive");
        assert!(cfg.xon <= cfg.xoff, "xon must not exceed xoff");
        let mut queues_of = Vec::with_capacity(flows.len());
        let mut chans_of = Vec::with_capacity(flows.len());
        for f in &flows {
            assert!(f.path.len() >= 2, "flow path too short");
            assert_eq!(
                topo.node(f.path[0]).kind,
                NodeKind::Host,
                "flow must start at a host"
            );
            let mut queues = Vec::new();
            let mut chans = Vec::new();
            for w in f.path.windows(2) {
                let port = topo
                    .port_towards(w[1], w[0])
                    .unwrap_or_else(|| panic!("{} and {} not adjacent", w[0], w[1]));
                chans.push(Chan {
                    from: w[0],
                    to: w[1],
                });
                if topo.node(w[1]).kind == NodeKind::Switch {
                    queues.push((w[1], port.port));
                }
            }
            queues_of.push(queues);
            chans_of.push(chans);
        }
        FluidNetwork {
            topo: topo.clone(),
            flows,
            cfg,
            queues_of,
            chans_of,
        }
    }

    /// Integrate `steps` steps and report.
    pub fn run(&self, steps: usize) -> FluidReport {
        let dt = self.cfg.dt_ns as f64 * 1e-9;
        let nf = self.flows.len();
        // levels[f][k]: bytes of flow f in its k-th queue.
        let mut levels: Vec<Vec<f64>> = self
            .queues_of
            .iter()
            .map(|qs| vec![0.0; qs.len()])
            .collect();
        // Host backlog for CBR flows (bytes); infinite flows don't need it.
        let mut host_backlog = vec![0.0f64; nf];
        let mut paused: BTreeSet<Chan> = BTreeSet::new();
        let mut paused_steps: BTreeMap<Chan, u64> = BTreeMap::new();
        let mut delivered = vec![0.0f64; nf];

        // Map each (flow, hop) to the channel it exits through, and build
        // channel capacity lookup.
        let cap = |c: Chan| -> f64 {
            let link = self
                .topo
                .port_towards(c.from, c.to)
                .expect("validated")
                .link;
            self.topo.link(link).rate.bps() as f64
        };

        for _ in 0..steps {
            // 1. Source arrivals into host backlogs.
            for (fi, f) in self.flows.iter().enumerate() {
                if let Some(rate) = f.demand {
                    host_backlog[fi] += rate.bps() as f64 / 8.0 * dt;
                }
            }

            // 2. Compute per-channel rate allocations (bytes/s).
            //    Demand of flow f on channel c = what it could send this
            //    step: backlog-limited or upstream-limited. We relax a few
            //    sweeps so pass-through rates propagate along paths.
            let mut out_rate: Vec<Vec<f64>> =
                self.chans_of.iter().map(|cs| vec![0.0; cs.len()]).collect();
            for _sweep in 0..4 {
                // Gather demands per channel, grouped by ingress port at
                // the sending switch (per-hop per-ingress fairness).
                let mut groups: BTreeMap<Chan, BTreeMap<i64, Vec<(usize, usize, f64)>>> =
                    BTreeMap::new();
                for (fi, chans) in self.chans_of.iter().enumerate() {
                    for (hop, &c) in chans.iter().enumerate() {
                        if paused.contains(&c) {
                            continue;
                        }
                        // Available bytes this step at this hop.
                        let avail = if hop == 0 {
                            match self.flows[fi].demand {
                                None => f64::INFINITY,
                                Some(_) => host_backlog[fi] / dt,
                            }
                        } else {
                            // Queue hop-1 level plus what flows in this step.
                            levels[fi][hop - 1] / dt + out_rate[fi][hop - 1]
                        };
                        if avail <= 0.0 {
                            continue;
                        }
                        // Group key: ingress port at the sender (or -1 for
                        // the host/source side).
                        let key = if hop == 0 {
                            -1
                        } else {
                            let (_, port) = self.queues_of[fi][hop - 1];
                            port.0 as i64
                        };
                        groups
                            .entry(c)
                            .or_default()
                            .entry(key)
                            .or_default()
                            .push((fi, hop, avail));
                    }
                }
                // Max-min between groups, then between flows in a group.
                for (c, by_group) in &groups {
                    let capacity = cap(*c) / 8.0; // bytes/s
                    let shares = waterfill(
                        by_group
                            .values()
                            .map(|v| v.iter().map(|&(_, _, a)| a).sum::<f64>())
                            .collect(),
                        capacity,
                    );
                    for (gi, members) in by_group.values().enumerate() {
                        let inner =
                            waterfill(members.iter().map(|&(_, _, a)| a).collect(), shares[gi]);
                        for (mi, &(fi, hop, _)) in members.iter().enumerate() {
                            out_rate[fi][hop] = inner[mi];
                        }
                    }
                }
                // Paused channels send nothing.
                for (fi, chans) in self.chans_of.iter().enumerate() {
                    for (hop, &c) in chans.iter().enumerate() {
                        if paused.contains(&c) {
                            out_rate[fi][hop] = 0.0;
                        }
                    }
                }
            }

            // 3. Integrate levels.
            for (fi, chans) in self.chans_of.iter().enumerate() {
                for (hop, _) in chans.iter().enumerate() {
                    let sent = out_rate[fi][hop] * dt;
                    if hop == 0 {
                        if self.flows[fi].demand.is_some() {
                            host_backlog[fi] = (host_backlog[fi] - sent).max(0.0);
                        }
                    } else {
                        levels[fi][hop - 1] = (levels[fi][hop - 1] - sent).max(0.0);
                    }
                    if hop == chans.len() - 1 {
                        delivered[fi] += sent;
                    } else {
                        levels[fi][hop] += sent;
                    }
                }
            }

            // 4. Pause/resume on queue totals.
            let mut totals: BTreeMap<(NodeId, PortNo), f64> = BTreeMap::new();
            for (fi, qs) in self.queues_of.iter().enumerate() {
                for (k, &(node, port)) in qs.iter().enumerate() {
                    *totals.entry((node, port)).or_insert(0.0) += levels[fi][k];
                }
            }
            for (&(node, port), &level) in &totals {
                let upstream = self.topo.ports(node)[port.0 as usize].peer;
                let c = Chan {
                    from: upstream,
                    to: node,
                };
                if level >= self.cfg.xoff.get() as f64 {
                    paused.insert(c);
                } else if level < self.cfg.xon.get() as f64 {
                    paused.remove(&c);
                }
            }
            for &c in &paused {
                *paused_steps.entry(c).or_insert(0) += 1;
            }
        }

        // Final deadlock check: a cycle among paused fabric channels whose
        // downstream levels all sit at/above XON.
        let fabric_paused: Vec<Chan> = paused
            .iter()
            .copied()
            .filter(|c| {
                self.topo.node(c.from).kind == NodeKind::Switch
                    && self.topo.node(c.to).kind == NodeKind::Switch
            })
            .collect();
        let deadlock = has_channel_cycle(&fabric_paused);

        let total_time = steps as f64 * dt;
        let mut throughput = BTreeMap::new();
        for (fi, f) in self.flows.iter().enumerate() {
            throughput.insert(f.id, delivered[fi] * 8.0 / total_time);
        }
        let mut pause_fraction = BTreeMap::new();
        let mut host_pause_fraction = BTreeMap::new();
        for (c, n) in paused_steps {
            let frac = n as f64 / steps as f64;
            if self.topo.node(c.from).kind == NodeKind::Host {
                host_pause_fraction.insert(c.from, frac);
            } else if self.topo.node(c.to).kind == NodeKind::Switch {
                pause_fraction.insert((c.from, c.to), frac);
            }
        }
        let final_buffered: f64 = levels.iter().flatten().sum();
        FluidReport {
            throughput,
            pause_fraction,
            host_pause_fraction,
            deadlock,
            final_buffered,
        }
    }
}

// The incremental max–min rate solver lives beside its consumer (the
// hybrid fluid/packet backend in `pfcsim_net::hybrid`) because this
// crate depends on `pfcsim_net`, not the reverse; re-exported here so
// `core::fluid` stays the analytic surface E12 and the tests program
// against.
pub use pfcsim_net::hybrid::{ChannelKey, RateSolver};

/// Max–min (water-filling) allocation of `capacity` to `demands`.
fn waterfill(demands: Vec<f64>, capacity: f64) -> Vec<f64> {
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![0.0; n];
    let mut remaining = capacity;
    let mut active: Vec<usize> = (0..n).collect();
    loop {
        if active.is_empty() || remaining <= 1e-9 {
            break;
        }
        let share = remaining / active.len() as f64;
        let mut satisfied = Vec::new();
        for &i in &active {
            if demands[i] - alloc[i] <= share {
                satisfied.push(i);
            }
        }
        if satisfied.is_empty() {
            for &i in &active {
                alloc[i] += share;
            }
            break;
        }
        for &i in &satisfied {
            remaining -= demands[i] - alloc[i];
            alloc[i] = demands[i];
        }
        active.retain(|i| !satisfied.contains(i));
    }
    alloc
}

/// Does the directed channel set contain a cycle?
fn has_channel_cycle(chans: &[Chan]) -> bool {
    use crate::scc::has_cycle;
    let nodes: BTreeSet<NodeId> = chans.iter().flat_map(|c| [c.from, c.to]).collect();
    let index: BTreeMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj = vec![Vec::new(); nodes.len()];
    for c in chans {
        adj[index[&c.from]].push(index[&c.to]);
    }
    has_cycle(&adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_topo::builders::{line, square, LinkSpec};

    fn gbps(x: f64) -> f64 {
        x / 1e9
    }

    #[test]
    fn waterfill_properties() {
        assert_eq!(waterfill(vec![], 10.0), Vec::<f64>::new());
        // Under-subscribed: everyone satisfied.
        let a = waterfill(vec![1.0, 2.0], 10.0);
        assert_eq!(a, vec![1.0, 2.0]);
        // Over-subscribed equal demands: equal split.
        let a = waterfill(vec![10.0, 10.0], 10.0);
        assert!((a[0] - 5.0).abs() < 1e-9 && (a[1] - 5.0).abs() < 1e-9);
        // Max-min: small demand satisfied, big ones split the rest.
        let a = waterfill(vec![1.0, 100.0, 100.0], 11.0);
        assert!((a[0] - 1.0).abs() < 1e-9);
        assert!((a[1] - 5.0).abs() < 1e-9);
        assert!((a[2] - 5.0).abs() < 1e-9);
        // Total never exceeds capacity.
        assert!(a.iter().sum::<f64>() <= 11.0 + 1e-9);
    }

    #[test]
    fn single_flow_reaches_line_rate() {
        let b = line(2, LinkSpec::default());
        let flow = FluidFlow {
            id: FlowId(0),
            demand: None,
            path: vec![b.hosts[0], b.switches[0], b.switches[1], b.hosts[1]],
        };
        let net = FluidNetwork::new(&b.topo, vec![flow], FluidConfig::default());
        let r = net.run(10_000); // 1 ms
        let thr = gbps(r.throughput[&FlowId(0)]);
        assert!((thr - 40.0).abs() < 1.0, "throughput {thr} Gbps");
        assert!(!r.deadlock);
    }

    #[test]
    fn cbr_flow_passes_through_at_demand() {
        let b = line(2, LinkSpec::default());
        let flow = FluidFlow {
            id: FlowId(0),
            demand: Some(BitRate::from_gbps(7)),
            path: vec![b.hosts[0], b.switches[0], b.switches[1], b.hosts[1]],
        };
        let net = FluidNetwork::new(&b.topo, vec![flow], FluidConfig::default());
        let r = net.run(10_000);
        let thr = gbps(r.throughput[&FlowId(0)]);
        assert!((thr - 7.0).abs() < 0.5, "throughput {thr} Gbps");
        assert!(r.final_buffered < 1_000.0, "no queue should build");
    }

    fn square_fluid(with_flow3: bool) -> FluidReport {
        let b = square(LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let mut flows = vec![
            FluidFlow {
                id: FlowId(1),
                demand: None,
                path: vec![h[0], s[0], s[1], s[2], s[3], h[3]],
            },
            FluidFlow {
                id: FlowId(2),
                demand: None,
                path: vec![h[2], s[2], s[3], s[0], s[1], h[1]],
            },
        ];
        if with_flow3 {
            flows.push(FluidFlow {
                id: FlowId(3),
                demand: None,
                path: vec![h[1], s[1], s[2], h[2]],
            });
        }
        FluidNetwork::new(&b.topo, flows, FluidConfig::default()).run(20_000) // 2 ms
    }

    #[test]
    fn fig3_fluid_predicts_stable_state_without_fabric_pauses() {
        let r = square_fluid(false);
        // The paper's flow-level analysis: each flow gets B/2 = 20 Gbps.
        for f in [FlowId(1), FlowId(2)] {
            let thr = gbps(r.throughput[&f]);
            assert!((thr - 20.0).abs() < 1.5, "flow {f}: {thr} Gbps");
        }
        // ...and, being infinitely smooth, no fabric pause and no deadlock.
        assert!(
            r.pause_fraction.values().all(|&f| f < 0.01),
            "fluid fabric pauses: {:?}",
            r.pause_fraction
        );
        assert!(!r.deadlock);
        // Hosts DO get paused (their demand is infinite).
        assert!(!r.host_pause_fraction.is_empty());
    }

    #[test]
    fn fig4_fluid_cannot_see_the_deadlock() {
        // The punchline: the fluid model says Fig. 4 ≈ Fig. 3 (stable
        // 20 Gbps state, no deadlock) — but the packet-level simulator
        // deadlocks. Flow-level analysis is structurally blind here.
        let r = square_fluid(true);
        for f in [FlowId(1), FlowId(2), FlowId(3)] {
            let thr = gbps(r.throughput[&f]);
            assert!((thr - 20.0).abs() < 2.5, "flow {f}: {thr} Gbps");
        }
        assert!(
            !r.deadlock,
            "fluid model must NOT predict the Fig. 4 deadlock"
        );
    }

    /// Two hosts behind one switch feeding a single bottleneck link — the
    /// smallest topology with a shared channel.
    fn solver_incast() -> (RateSolver, Vec<NodeId>, Vec<NodeId>) {
        let spec = LinkSpec::default();
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let h0 = t.add_host("h0");
        let h1 = t.add_host("h1");
        let sink = t.add_host("sink");
        t.connect(s0, s1, spec.rate, spec.delay);
        t.connect(h0, s0, spec.rate, spec.delay);
        t.connect(h1, s0, spec.rate, spec.delay);
        t.connect(sink, s1, spec.rate, spec.delay);
        let cap = spec.rate.bps() as f64 / 8.0;
        let mut sv = RateSolver::new();
        for (a, b) in [(h0, s0), (h1, s0), (s0, s1), (s1, sink)] {
            sv.set_capacity((a, b), cap);
        }
        (sv, vec![h0, s0, s1, sink], vec![h1, s0, s1, sink])
    }

    #[test]
    fn solver_zero_rate_flows_are_satisfied_and_invisible() {
        let (mut sv, p0, p1) = solver_incast();
        sv.add_flow(FlowId(0), Some(0.0), &p0);
        sv.add_flow(FlowId(1), None, &p1);
        let cap = LinkSpec::default().rate.bps() as f64 / 8.0;
        // The zero-rate flow gets 0 and leaves the full channel to the
        // infinite flow — it must not count as a waterfill contender.
        assert_eq!(sv.rate_of(FlowId(0)), Some(0.0));
        assert!((sv.rate_of(FlowId(1)).unwrap() - cap).abs() < 1.0);
        assert!(sv.all_satisfied(1e-6));
    }

    #[test]
    fn solver_single_link_bottleneck_ties_split_evenly() {
        let (mut sv, p0, p1) = solver_incast();
        sv.add_flow(FlowId(0), None, &p0);
        sv.add_flow(FlowId(1), None, &p1);
        let cap = LinkSpec::default().rate.bps() as f64 / 8.0;
        let r0 = sv.rate_of(FlowId(0)).unwrap();
        let r1 = sv.rate_of(FlowId(1)).unwrap();
        // Exact tie on the shared s0→s1 channel: both halves, no bias
        // from flow-id or channel iteration order.
        assert!((r0 - cap / 2.0).abs() < 1.0, "r0 {r0} vs {}", cap / 2.0);
        assert!((r1 - r0).abs() < 1e-6, "tie must split evenly");
    }

    #[test]
    fn solver_resolves_after_flow_removal() {
        let (mut sv, p0, p1) = solver_incast();
        let cap = LinkSpec::default().rate.bps() as f64 / 8.0;
        // A demand just over half the bottleneck is *not* satisfiable
        // alongside an infinite flow…
        sv.add_flow(FlowId(0), Some(cap * 0.6), &p0);
        sv.add_flow(FlowId(1), None, &p1);
        assert!(sv.rate_of(FlowId(0)).unwrap() < cap * 0.6 - 1.0);
        assert!(!sv.all_satisfied(1e-6));
        // …until the competitor is removed (the hybrid demote→re-solve
        // path): the survivor's rate must rise to its full demand.
        assert!(sv.remove_flow(FlowId(1)));
        assert!(!sv.remove_flow(FlowId(1)), "double-remove reports absence");
        assert!((sv.rate_of(FlowId(0)).unwrap() - cap * 0.6).abs() < 1e-6);
        assert!(sv.all_satisfied(1e-6));
        assert_eq!(sv.len(), 1);
    }

    #[test]
    fn solver_demand_limited_leaves_slack_to_others() {
        // Max-min, not proportional: a small demand is satisfied in full
        // and the big flows split the remainder of the shared channel.
        let (mut sv, p0, p1) = solver_incast();
        let cap = LinkSpec::default().rate.bps() as f64 / 8.0;
        sv.add_flow(FlowId(0), Some(cap * 0.1), &p0);
        sv.add_flow(FlowId(1), None, &p1);
        assert!((sv.rate_of(FlowId(0)).unwrap() - cap * 0.1).abs() < 1e-6);
        assert!((sv.rate_of(FlowId(1)).unwrap() - cap * 0.9).abs() < 1.0);
    }

    #[test]
    fn oversubscribed_incast_paused_in_fluid() {
        // 2:1 incast: fluid model must show host pauses and fair split.
        let spec = LinkSpec::default();
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let h0 = t.add_host("h0");
        let h1 = t.add_host("h1");
        let sink = t.add_host("sink");
        t.connect(s0, s1, spec.rate, spec.delay);
        t.connect(h0, s0, spec.rate, spec.delay);
        t.connect(h1, s0, spec.rate, spec.delay);
        t.connect(sink, s1, spec.rate, spec.delay);
        let flows = vec![
            FluidFlow {
                id: FlowId(0),
                demand: None,
                path: vec![h0, s0, s1, sink],
            },
            FluidFlow {
                id: FlowId(1),
                demand: None,
                path: vec![h1, s0, s1, sink],
            },
        ];
        let r = FluidNetwork::new(&t, flows, FluidConfig::default()).run(20_000);
        for f in [FlowId(0), FlowId(1)] {
            let thr = gbps(r.throughput[&f]);
            assert!((thr - 20.0).abs() < 1.5, "flow {f}: {thr} Gbps");
        }
        assert!(!r.deadlock);
    }
}
