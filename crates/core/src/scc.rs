//! Strongly connected components (iterative Tarjan).

/// Compute the strongly connected components of a digraph given as an
/// adjacency list. Returns components in reverse topological order (every
/// edge between components points from a later-listed component to an
/// earlier one). Each component lists vertex indices in discovery order.
pub fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Iterative DFS frame: (vertex, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// True iff the digraph has a cycle (an SCC of size > 1, or a self-loop).
pub fn has_cycle(adj: &[Vec<usize>]) -> bool {
    if adj.iter().enumerate().any(|(v, out)| out.contains(&v)) {
        return true;
    }
    tarjan_scc(adj).iter().any(|c| c.len() > 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(tarjan_scc(&[]).is_empty());
        let adj = vec![vec![]];
        assert_eq!(tarjan_scc(&adj), vec![vec![0]]);
        assert!(!has_cycle(&adj));
    }

    #[test]
    fn dag_has_no_cycle_and_n_components() {
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 4);
        assert!(!has_cycle(&adj));
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
        assert!(has_cycle(&adj));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let adj = vec![vec![0]];
        assert!(has_cycle(&adj));
    }

    #[test]
    fn two_cycles_bridged() {
        // 0<->1 -> 2<->3
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 2);
        let mut sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
        assert!(has_cycle(&adj));
    }

    #[test]
    fn reverse_topological_order() {
        // 0 -> 1 -> 2, SCCs come out children-first.
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        use pfcsim_simcore::rng::SimRng;
        let mut rng = SimRng::new(42);
        for _ in 0..50 {
            let n = 2 + (rng.gen_range(8) as usize);
            let mut adj = vec![Vec::new(); n];
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.25) {
                        adj[u].push(v);
                    }
                }
            }
            // Brute-force reachability.
            let mut reach = vec![vec![false; n]; n];
            for u in 0..n {
                let mut st = vec![u];
                while let Some(x) = st.pop() {
                    for &y in &adj[x] {
                        if !reach[u][y] {
                            reach[u][y] = true;
                            st.push(y);
                        }
                    }
                }
            }
            let comps = tarjan_scc(&adj);
            // Same component iff mutually reachable.
            let mut comp_of = vec![usize::MAX; n];
            for (ci, c) in comps.iter().enumerate() {
                for &v in c {
                    comp_of[v] = ci;
                }
            }
            for u in 0..n {
                for v in 0..n {
                    if u == v {
                        continue;
                    }
                    let together = comp_of[u] == comp_of[v];
                    let mutual = reach[u][v] && reach[v][u];
                    assert_eq!(together, mutual, "u={u} v={v}");
                }
            }
        }
    }
}
