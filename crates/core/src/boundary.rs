//! The boundary-state model (paper §3.1, Table 1, Equations 1–3).
//!
//! For a single flow trapped in an `n`-switch routing loop with link
//! bandwidth `B` and initial TTL `T`:
//!
//! * Eq. 1 — boundary balance at the first switch: `r + B − r_d = B`;
//! * Eq. 2 — TTL conservation in the boundary state: `n·B = TTL·r`;
//! * Eq. 3 — deadlock iff the injection rate exceeds the drain:
//!   `r > r_d = n·B / TTL`.
//!
//! The model's testbed validation point: `B = 40 Gbps, n = 2, TTL = 16 ⇒`
//! deadlock threshold 5 Gbps — exactly what both the paper's hardware and
//! this crate's simulator (see `tests/` and the bench crate) observe.

use serde::{Deserialize, Serialize};

use pfcsim_simcore::units::BitRate;

/// Boundary-state model of a routing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryModel {
    /// Loop length in switches (`n` in Table 1).
    pub loop_len: u32,
    /// Link bandwidth (`B`).
    pub bandwidth: BitRate,
    /// Initial TTL of injected packets.
    pub ttl: u32,
}

impl BoundaryModel {
    /// Build a model; all parameters must be positive.
    pub fn new(loop_len: u32, bandwidth: BitRate, ttl: u32) -> Self {
        assert!(loop_len >= 1, "loop length must be positive");
        assert!(!bandwidth.is_zero(), "bandwidth must be positive");
        assert!(ttl >= 1, "TTL must be positive");
        BoundaryModel {
            loop_len,
            bandwidth,
            ttl,
        }
    }

    /// Eq. 3's right-hand side: the TTL-expiry drain rate `r_d = n·B/TTL`,
    /// which is also the deadlock threshold on the injection rate.
    pub fn deadlock_threshold(&self) -> BitRate {
        self.bandwidth.scale(self.loop_len as u64, self.ttl as u64)
    }

    /// Eq. 3: does injection rate `r` lead to deadlock?
    pub fn predicts_deadlock(&self, r: BitRate) -> bool {
        r > self.deadlock_threshold()
    }

    /// Loop-link utilisation below the boundary: `u = r·TTL / (n·B)`,
    /// capped at 1. At `u = 1` the loop saturates and queues grow without
    /// bound — the onset of deadlock.
    pub fn loop_utilization(&self, r: BitRate) -> f64 {
        let u =
            r.bps() as f64 * self.ttl as f64 / (self.loop_len as f64 * self.bandwidth.bps() as f64);
        u.min(1.0)
    }

    /// The §4 TTL-class refinement: if packets are partitioned into
    /// priority classes by TTL bands of width `class_width`, PFC operates
    /// per class and the *effective* TTL is at most `class_width`; the
    /// threshold rises to `n·B / class_width`.
    pub fn threshold_with_class_width(&self, class_width: u32) -> BitRate {
        assert!(class_width >= 1, "class width must be positive");
        self.bandwidth
            .scale(self.loop_len as u64, class_width as u64)
    }

    /// §4's safety guarantee: with initial TTL ≤ loop length the threshold
    /// reaches `B` itself, which an injector can never exceed — no deadlock
    /// at any rate.
    pub fn is_unconditionally_safe(&self) -> bool {
        self.ttl <= self.loop_len
    }

    /// The maximum safe injection rate for a target margin (e.g. 0.9 stays
    /// 10% under the threshold) — the §4 rate-limiting mitigation.
    pub fn safe_rate(&self, margin: f64) -> BitRate {
        assert!((0.0..=1.0).contains(&margin), "margin in [0,1]");
        let t = self.deadlock_threshold().bps() as f64 * margin;
        BitRate::from_bps(t as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> BoundaryModel {
        BoundaryModel::new(2, BitRate::from_gbps(40), 16)
    }

    #[test]
    fn paper_validation_point_is_5gbps() {
        assert_eq!(paper_model().deadlock_threshold(), BitRate::from_gbps(5));
    }

    #[test]
    fn predicts_deadlock_strictly_above_threshold() {
        let m = paper_model();
        assert!(!m.predicts_deadlock(BitRate::from_gbps(4)));
        assert!(
            !m.predicts_deadlock(BitRate::from_gbps(5)),
            "boundary itself balances"
        );
        assert!(m.predicts_deadlock(BitRate::from_mbps(5_001)));
        assert!(m.predicts_deadlock(BitRate::from_gbps(6)));
    }

    #[test]
    fn threshold_monotonicity() {
        // Larger bandwidth, shorter loop or smaller TTL ⇒ higher threshold
        // ("With larger bandwidth, shorter loop length or smaller initial
        // TTL values, the threshold of r can be higher" — §3.1).
        let base = paper_model().deadlock_threshold();
        assert!(BoundaryModel::new(2, BitRate::from_gbps(100), 16).deadlock_threshold() > base);
        assert!(BoundaryModel::new(3, BitRate::from_gbps(40), 16).deadlock_threshold() > base);
        assert!(BoundaryModel::new(2, BitRate::from_gbps(40), 8).deadlock_threshold() > base);
        assert!(BoundaryModel::new(2, BitRate::from_gbps(40), 32).deadlock_threshold() < base);
    }

    #[test]
    fn utilization_saturates_at_threshold() {
        let m = paper_model();
        assert!((m.loop_utilization(BitRate::from_gbps(5)) - 1.0).abs() < 1e-12);
        let half = m.loop_utilization(BitRate::from_mbps(2_500));
        assert!((half - 0.5).abs() < 1e-12);
        assert_eq!(m.loop_utilization(BitRate::from_gbps(40)), 1.0, "capped");
    }

    #[test]
    fn class_width_raises_threshold() {
        let m = paper_model();
        // Width-4 TTL classes: threshold 2*40/4 = 20 Gbps.
        assert_eq!(m.threshold_with_class_width(4), BitRate::from_gbps(20));
        // Width ≤ n: threshold ≥ B — unconditionally safe.
        assert!(m.threshold_with_class_width(2) >= m.bandwidth);
    }

    #[test]
    fn unconditional_safety_when_ttl_at_most_loop_len() {
        assert!(!paper_model().is_unconditionally_safe());
        assert!(BoundaryModel::new(8, BitRate::from_gbps(40), 8).is_unconditionally_safe());
        assert!(BoundaryModel::new(8, BitRate::from_gbps(40), 4).is_unconditionally_safe());
    }

    #[test]
    fn safe_rate_applies_margin() {
        let m = paper_model();
        assert_eq!(m.safe_rate(1.0), BitRate::from_gbps(5));
        assert_eq!(m.safe_rate(0.8), BitRate::from_gbps(4));
        assert_eq!(m.safe_rate(0.0), BitRate::ZERO);
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_rejected() {
        BoundaryModel::new(2, BitRate::from_gbps(40), 0);
    }
}
