//! Elementary-cycle enumeration (Johnson's algorithm, bounded).
//!
//! Used to produce human-readable CBD witnesses: not just "a cycle exists"
//! but the actual RX-queue rings of the paper's Figures 2(b), 3(b), 4(b).

use std::collections::BTreeSet;

use crate::scc::tarjan_scc;

/// Enumerate elementary cycles of the digraph, stopping after `limit`
/// cycles (the count can be exponential). Each cycle lists vertex indices
/// in order, starting from its smallest vertex.
pub fn elementary_cycles(adj: &[Vec<usize>], limit: usize) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut result = Vec::new();
    if n == 0 || limit == 0 {
        return result;
    }
    // Self-loops first (Johnson's algorithm works on simple digraphs).
    for (v, out) in adj.iter().enumerate() {
        if out.contains(&v) {
            result.push(vec![v]);
            if result.len() >= limit {
                return result;
            }
        }
    }

    let mut blocked = vec![false; n];
    let mut block_map: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut stack: Vec<usize> = Vec::new();

    // Process vertices in increasing order; for each start s, restrict to
    // the SCC containing s within the subgraph induced by {s..n}.
    for s in 0..n {
        if result.len() >= limit {
            break;
        }
        // Subgraph on vertices >= s.
        let sub: Vec<Vec<usize>> = (0..n)
            .map(|u| {
                if u < s {
                    Vec::new()
                } else {
                    adj[u]
                        .iter()
                        .copied()
                        .filter(|&v| v >= s && v != u)
                        .collect()
                }
            })
            .collect();
        let comps = tarjan_scc(&sub);
        let Some(comp) = comps.into_iter().find(|c| c.contains(&s) && c.len() > 1) else {
            continue;
        };
        let in_comp: BTreeSet<usize> = comp.into_iter().collect();
        for v in &in_comp {
            blocked[*v] = false;
            block_map[*v].clear();
        }

        // Recursive circuit search, implemented iteratively would be
        // intricate; depth is bounded by the SCC size, so recursion with an
        // explicit helper is fine for simulation-scale graphs.
        fn unblock(v: usize, blocked: &mut [bool], block_map: &mut [BTreeSet<usize>]) {
            blocked[v] = false;
            let deps: Vec<usize> = block_map[v].iter().copied().collect();
            block_map[v].clear();
            for w in deps {
                if blocked[w] {
                    unblock(w, blocked, block_map);
                }
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn circuit(
            v: usize,
            s: usize,
            adj: &[Vec<usize>],
            in_comp: &BTreeSet<usize>,
            blocked: &mut [bool],
            block_map: &mut Vec<BTreeSet<usize>>,
            stack: &mut Vec<usize>,
            result: &mut Vec<Vec<usize>>,
            limit: usize,
        ) -> bool {
            let mut found = false;
            stack.push(v);
            blocked[v] = true;
            for &w in &adj[v] {
                if w == v || !in_comp.contains(&w) {
                    continue;
                }
                if result.len() >= limit {
                    break;
                }
                if w == s {
                    result.push(stack.clone());
                    found = true;
                } else if !blocked[w]
                    && circuit(w, s, adj, in_comp, blocked, block_map, stack, result, limit)
                {
                    found = true;
                }
            }
            if found {
                unblock(v, blocked, block_map);
            } else {
                for &w in &adj[v] {
                    if w != v && in_comp.contains(&w) {
                        block_map[w].insert(v);
                    }
                }
            }
            stack.pop();
            found
        }

        circuit(
            s,
            s,
            adj,
            &in_comp,
            &mut blocked,
            &mut block_map,
            &mut stack,
            &mut result,
            limit,
        );
        stack.clear();
    }
    result.truncate(limit);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut cycles: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        cycles.sort();
        cycles
    }

    #[test]
    fn no_cycles_in_dag() {
        let adj = vec![vec![1, 2], vec![2], vec![]];
        assert!(elementary_cycles(&adj, 100).is_empty());
    }

    #[test]
    fn single_triangle() {
        let adj = vec![vec![1], vec![2], vec![0]];
        assert_eq!(elementary_cycles(&adj, 100), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn self_loop_counts() {
        let adj = vec![vec![0, 1], vec![]];
        assert_eq!(elementary_cycles(&adj, 100), vec![vec![0]]);
    }

    #[test]
    fn two_cycles_sharing_a_vertex() {
        // 0->1->0 and 0->2->0.
        let adj = vec![vec![1, 2], vec![0], vec![0]];
        let cycles = sorted(elementary_cycles(&adj, 100));
        assert_eq!(cycles, vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn complete_digraph_k3_has_five_cycles() {
        // K3 with all 6 arcs: cycles = 3 two-cycles + 2 triangles.
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let cycles = elementary_cycles(&adj, 100);
        assert_eq!(cycles.len(), 5);
        assert_eq!(cycles.iter().filter(|c| c.len() == 2).count(), 3);
        assert_eq!(cycles.iter().filter(|c| c.len() == 3).count(), 2);
    }

    #[test]
    fn limit_truncates() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(elementary_cycles(&adj, 2).len(), 2);
        assert!(elementary_cycles(&adj, 0).is_empty());
    }

    #[test]
    fn cycles_start_at_smallest_vertex() {
        let adj = vec![vec![], vec![2], vec![3], vec![1]];
        let cycles = elementary_cycles(&adj, 10);
        assert_eq!(cycles, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn count_matches_bruteforce_on_random_graphs() {
        use pfcsim_simcore::rng::SimRng;
        let mut rng = SimRng::new(7);
        for _ in 0..30 {
            let n = 2 + rng.gen_range(5) as usize;
            let mut adj = vec![Vec::new(); n];
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.3) {
                        adj[u].push(v);
                    }
                }
            }
            // Brute force: DFS all simple paths back to start.
            fn brute(
                adj: &[Vec<usize>],
                start: usize,
                v: usize,
                visited: &mut Vec<bool>,
                count: &mut usize,
            ) {
                for &w in &adj[v] {
                    if w == start && v >= start {
                        *count += 1;
                    } else if w > start && !visited[w] {
                        visited[w] = true;
                        brute(adj, start, w, visited, count);
                        visited[w] = false;
                    }
                }
            }
            let mut expected = 0;
            for s in 0..n {
                let mut visited = vec![false; n];
                visited[s] = true;
                brute(&adj, s, s, &mut visited, &mut expected);
            }
            let got = elementary_cycles(&adj, 100_000).len();
            assert_eq!(got, expected, "adj={adj:?}");
        }
    }
}
