//! Deadlock-freedom verification (the *necessary*-condition machinery).
//!
//! Dally & Seitz: a routing function is deadlock-free iff its channel
//! (buffer) dependency graph is acyclic. This module checks that property
//! for a concrete (topology, tables, workload) and for the all-pairs
//! closure of the tables — the guarantee that "deadlock-free routing"
//! schemes like up–down claim, and that misconfiguration silently breaks.

use pfcsim_net::flow::FlowSpec;
use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::{FlowId, NodeId, Priority};
use pfcsim_topo::routing::{trace_path, ForwardingTables, Trace};

use crate::bdg::{BufferDependencyGraph, RxQueue};

/// Why a routing configuration is not (provably) deadlock-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreedomViolation {
    /// A cyclic buffer dependency exists; one witness cycle attached.
    CyclicDependency(Vec<RxQueue>),
    /// A destination is unreachable from a source under the tables.
    Unroutable {
        /// Source host.
        src: NodeId,
        /// Destination host.
        dst: NodeId,
    },
    /// A forwarding loop exists (trace exceeded the hop cap).
    ForwardingLoop {
        /// Source host.
        src: NodeId,
        /// Destination host.
        dst: NodeId,
    },
}

/// Verify that the given workload (set of flows) cannot deadlock under
/// `tables`: its buffer dependency graph must be acyclic.
pub fn verify_workload(
    topo: &Topology,
    tables: &ForwardingTables,
    specs: &[FlowSpec],
) -> Result<(), FreedomViolation> {
    let g = BufferDependencyGraph::from_specs(topo, tables, specs);
    if g.has_cbd() {
        let cycle = g.cbd_cycles(1).into_iter().next().expect("cbd has a cycle");
        return Err(FreedomViolation::CyclicDependency(cycle));
    }
    Ok(())
}

/// Verify the tables are deadlock-free for *any* traffic matrix: build the
/// dependency graph over every host pair (every flow any tenant could
/// start) and check acyclicity. Also reports unroutable pairs and
/// forwarding loops.
pub fn verify_all_pairs(
    topo: &Topology,
    tables: &ForwardingTables,
    priority: Priority,
) -> Result<(), FreedomViolation> {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let max_hops = 4 * topo.node_count().max(16);
    let mut g = BufferDependencyGraph::new();
    let mut flow = 0u32;
    for &src in &hosts {
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            let trace = trace_path(topo, tables, FlowId(flow), src, dst, max_hops);
            flow += 1;
            match trace {
                Trace::Delivered(nodes) => g.add_path(topo, &nodes, priority, None),
                Trace::NoRoute(_) => return Err(FreedomViolation::Unroutable { src, dst }),
                Trace::Looping(nodes) => {
                    // Register the loop's dependencies (they are the CBD),
                    // then report the loop itself.
                    g.add_path(topo, &nodes, priority, None);
                    return Err(FreedomViolation::ForwardingLoop { src, dst });
                }
            }
        }
    }
    if g.has_cbd() {
        let cycle = g.cbd_cycles(1).into_iter().next().expect("cbd has a cycle");
        return Err(FreedomViolation::CyclicDependency(cycle));
    }
    Ok(())
}

/// Check that every all-pairs path under `tables` is valley-free
/// (up moves never follow a down move). Requires tiers on all switches.
pub fn verify_valley_free(
    topo: &Topology,
    tables: &ForwardingTables,
) -> Result<(), (NodeId, NodeId)> {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let tier = |n: NodeId| topo.node(n).tier.unwrap_or(0);
    let mut flow = 0u32;
    for &src in &hosts {
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            let trace = trace_path(topo, tables, FlowId(flow), src, dst, 64);
            flow += 1;
            let Trace::Delivered(nodes) = trace else {
                return Err((src, dst));
            };
            let mut went_down = false;
            for w in nodes.windows(2) {
                if topo.node(w[0]).kind == NodeKind::Host || topo.node(w[1]).kind == NodeKind::Host
                {
                    continue;
                }
                if tier(w[1]) < tier(w[0]) {
                    went_down = true;
                } else if tier(w[1]) > tier(w[0]) && went_down {
                    return Err((src, dst));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_net::flow::FlowSpec;
    use pfcsim_simcore::units::BitRate;
    use pfcsim_topo::builders::{fat_tree, leaf_spine, square, two_switch_loop, LinkSpec};
    use pfcsim_topo::routing::{install_cycle_route, shortest_path_tables, up_down_tables};

    #[test]
    fn up_down_fat_tree_verifies_clean() {
        let b = fat_tree(4, LinkSpec::default());
        let tables = up_down_tables(&b.topo);
        verify_all_pairs(&b.topo, &tables, Priority::DEFAULT).unwrap();
        verify_valley_free(&b.topo, &tables).unwrap();
    }

    #[test]
    fn up_down_leaf_spine_verifies_clean() {
        let b = leaf_spine(4, 2, 2, LinkSpec::default());
        let tables = up_down_tables(&b.topo);
        verify_all_pairs(&b.topo, &tables, Priority::DEFAULT).unwrap();
    }

    #[test]
    fn odd_ring_shortest_paths_have_cbd_over_all_pairs() {
        // A 5-ring has no equal-cost ties: every 2-hop pair deterministically
        // routes the short way, and those paths jointly wrap the ring —
        // shortest-path routing on rings is not deadlock-free.
        use pfcsim_topo::builders::ring;
        let b = ring(5, LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let err = verify_all_pairs(&b.topo, &tables, Priority::DEFAULT);
        assert!(
            matches!(err, Err(FreedomViolation::CyclicDependency(_))),
            "got {err:?}"
        );
    }

    #[test]
    fn workload_specific_verdicts_differ_from_all_pairs() {
        // One lonely flow on the square is fine even though the tables are
        // not all-pairs deadlock-free.
        let b = square(LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let specs = vec![FlowSpec::infinite(0, b.hosts[0], b.hosts[1])];
        verify_workload(&b.topo, &tables, &specs).unwrap();
    }

    #[test]
    fn routing_loop_is_reported() {
        let b = two_switch_loop(LinkSpec::default());
        let mut tables = shortest_path_tables(&b.topo);
        install_cycle_route(
            &b.topo,
            &mut tables,
            &[b.switches[0], b.switches[1]],
            b.hosts[1],
        );
        let err = verify_all_pairs(&b.topo, &tables, Priority::DEFAULT);
        assert!(
            matches!(err, Err(FreedomViolation::ForwardingLoop { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn black_hole_is_reported() {
        let b = leaf_spine(2, 1, 1, LinkSpec::default());
        let mut tables = shortest_path_tables(&b.topo);
        tables.remove(b.switches[0], b.hosts[1]);
        let err = verify_all_pairs(&b.topo, &tables, Priority::DEFAULT);
        assert!(matches!(err, Err(FreedomViolation::Unroutable { .. })));
    }

    #[test]
    fn workload_with_loop_flow_has_cbd() {
        let b = two_switch_loop(LinkSpec::default());
        let mut tables = shortest_path_tables(&b.topo);
        install_cycle_route(
            &b.topo,
            &mut tables,
            &[b.switches[0], b.switches[1]],
            b.hosts[1],
        );
        let specs =
            vec![FlowSpec::cbr(0, b.hosts[0], b.hosts[1], BitRate::from_gbps(1)).with_ttl(16)];
        let err = verify_workload(&b.topo, &tables, &specs);
        assert!(matches!(err, Err(FreedomViolation::CyclicDependency(c)) if c.len() == 2));
    }
}
