//! Routing restriction (the §2 baseline: deadlock-free routing via
//! up*/down*) and its cost.
//!
//! For tiered Clos topologies, `pfcsim_topo::routing::up_down_tables`
//! already gives valley-free routing. This module adds the classic
//! **up*/down*** scheme for *arbitrary* topologies (Jellyfish, torus, …):
//! a BFS spanning tree orders nodes; each link gets an "up" direction
//! (toward the root, ties broken by id); a legal path climbs zero or more
//! up-links then descends down-links only. Down→up turns are prohibited,
//! which provably breaks every buffer-dependency cycle — at the price of
//! longer paths and skewed load, "wast\[ing\] link bandwidth and limit\[ing\]
//! throughput performance" (§2). [`restriction_cost`] quantifies exactly
//! that.

use serde::{Deserialize, Serialize};

use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::NodeId;
use pfcsim_topo::routing::{bfs_distances, path_stretch, ForwardingTables};

/// Total order used to orient links: (BFS level from root, node id).
fn order_key(levels: &[Option<u32>], n: NodeId) -> (u32, u32) {
    (levels[n.0 as usize].unwrap_or(u32::MAX), n.0)
}

/// Build up*/down* forwarding tables for an arbitrary connected topology.
///
/// Next-hop policy per destination: take a *down* step whenever any
/// down-only path to the destination exists (choosing the shortest), else
/// take the best *up* step. Because a node reached by a down step was
/// chosen for having a down-only path, descending packets never need to
/// turn upward — every realized path is up*down* and the buffer dependency
/// graph is provably acyclic.
pub fn up_down_arbitrary(topo: &Topology, root: NodeId) -> ForwardingTables {
    assert_eq!(
        topo.node(root).kind,
        NodeKind::Switch,
        "root the spanning tree at a switch"
    );
    let levels = bfs_distances(topo, root);
    let n = topo.node_count();
    // Node processing orders.
    let mut by_order: Vec<NodeId> = topo.nodes().iter().map(|nd| nd.id).collect();
    by_order.sort_by_key(|&x| order_key(&levels, x));

    let mut ft = ForwardingTables::empty(topo);
    let hosts: Vec<NodeId> = topo.hosts().collect();
    const INF: u32 = u32::MAX / 2;
    for &dst in &hosts {
        // dist_down[u]: shortest path u -> dst using only down moves
        // (strictly increasing order key). The final hop into the host is
        // a down move iff the host orders below its switch — hosts have
        // maximal levels (level(switch)+1), so it always is.
        let mut dist_down = vec![INF; n];
        dist_down[dst.0 as usize] = 0;
        // Process in decreasing order so all down-neighbors are final.
        for &u in by_order.iter().rev() {
            if topo.node(u).kind == NodeKind::Host {
                continue;
            }
            let ku = order_key(&levels, u);
            let mut best = INF;
            for p in topo.ports(u) {
                let v = p.peer;
                if topo.node(v).kind == NodeKind::Host && v != dst {
                    continue;
                }
                if order_key(&levels, v) > ku && dist_down[v.0 as usize] < best {
                    best = dist_down[v.0 as usize];
                }
            }
            if best < INF {
                dist_down[u.0 as usize] = best + 1;
            }
        }
        // Policy distance: down if possible, else best up neighbor's
        // policy distance + 1. Up moves strictly decrease the order key,
        // so increasing-order processing suffices.
        let mut pd = vec![INF; n];
        for &u in by_order.iter() {
            if topo.node(u).kind == NodeKind::Host {
                continue;
            }
            if dist_down[u.0 as usize] < INF {
                pd[u.0 as usize] = dist_down[u.0 as usize];
                continue;
            }
            let ku = order_key(&levels, u);
            let mut best = INF;
            for p in topo.ports(u) {
                let v = p.peer;
                if topo.node(v).kind == NodeKind::Host {
                    continue;
                }
                if order_key(&levels, v) < ku && pd[v.0 as usize] < best {
                    best = pd[v.0 as usize];
                }
            }
            if best < INF {
                pd[u.0 as usize] = best + 1;
            }
        }
        // Emit next hops.
        for node in topo.nodes() {
            if node.kind == NodeKind::Host || node.id == dst {
                continue;
            }
            let u = node.id;
            let ku = order_key(&levels, u);
            let mut hops = Vec::new();
            if dist_down[u.0 as usize] < INF {
                for p in topo.ports(u) {
                    let v = p.peer;
                    if v == dst {
                        hops.push(p.port);
                        continue;
                    }
                    if topo.node(v).kind == NodeKind::Host {
                        continue;
                    }
                    if order_key(&levels, v) > ku
                        && dist_down[v.0 as usize] + 1 == dist_down[u.0 as usize]
                    {
                        hops.push(p.port);
                    }
                }
            } else if pd[u.0 as usize] < INF {
                for p in topo.ports(u) {
                    let v = p.peer;
                    if topo.node(v).kind == NodeKind::Host {
                        continue;
                    }
                    if order_key(&levels, v) < ku && pd[v.0 as usize] + 1 == pd[u.0 as usize] {
                        hops.push(p.port);
                    }
                }
            }
            if !hops.is_empty() {
                ft.set(u, dst, hops);
            }
        }
    }
    ft
}

/// The cost of a routing restriction relative to shortest paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestrictionCost {
    /// Mean path stretch over all host pairs.
    pub mean_stretch: f64,
    /// Worst-case stretch.
    pub max_stretch: f64,
    /// Host pairs that became unroutable (should be 0 on connected graphs).
    pub unreachable_pairs: usize,
}

/// Quantify §2's "waste link bandwidth and limit throughput performance".
pub fn restriction_cost(topo: &Topology, restricted: &ForwardingTables) -> RestrictionCost {
    let (mean, max, unreachable) = path_stretch(topo, restricted);
    RestrictionCost {
        mean_stretch: mean,
        max_stretch: max,
        unreachable_pairs: unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_core::freedom::verify_all_pairs;
    use pfcsim_topo::builders::{jellyfish, ring, torus2d, LinkSpec};
    use pfcsim_topo::ids::Priority;
    use pfcsim_topo::routing::shortest_path_tables;

    #[test]
    fn ring_up_down_is_deadlock_free_but_stretched() {
        let b = ring(6, LinkSpec::default());
        let ft = up_down_arbitrary(&b.topo, b.switches[0]);
        verify_all_pairs(&b.topo, &ft, Priority::DEFAULT).expect("up*/down* is deadlock-free");
        let cost = restriction_cost(&b.topo, &ft);
        assert_eq!(cost.unreachable_pairs, 0);
        assert!(
            cost.mean_stretch > 1.0,
            "restriction must cost something on a ring: {cost:?}"
        );
        // Shortest paths on the even ring may or may not be CBD-free
        // (ECMP-dependent), but they are never *stretched*.
        let sp = shortest_path_tables(&b.topo);
        let sp_cost = restriction_cost(&b.topo, &sp);
        assert!((sp_cost.mean_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn torus_up_down_is_deadlock_free() {
        let b = torus2d(3, 3, LinkSpec::default());
        let ft = up_down_arbitrary(&b.topo, b.switches[0]);
        verify_all_pairs(&b.topo, &ft, Priority::DEFAULT).expect("deadlock-free");
        let cost = restriction_cost(&b.topo, &ft);
        assert_eq!(cost.unreachable_pairs, 0);
        assert!(cost.max_stretch >= 1.0);
    }

    #[test]
    fn jellyfish_up_down_is_deadlock_free_across_seeds() {
        for seed in [1u64, 2, 3] {
            let b = jellyfish(10, 3, 1, seed, LinkSpec::default());
            let ft = up_down_arbitrary(&b.topo, b.switches[0]);
            verify_all_pairs(&b.topo, &ft, Priority::DEFAULT)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            let cost = restriction_cost(&b.topo, &ft);
            assert_eq!(cost.unreachable_pairs, 0, "seed {seed}");
        }
    }

    #[test]
    fn up_down_root_choice_changes_paths_not_safety() {
        let b = ring(6, LinkSpec::default());
        for root in [b.switches[0], b.switches[3]] {
            let ft = up_down_arbitrary(&b.topo, root);
            verify_all_pairs(&b.topo, &ft, Priority::DEFAULT).expect("any root works");
        }
    }

    #[test]
    #[should_panic(expected = "root the spanning tree at a switch")]
    fn host_root_rejected() {
        let b = ring(3, LinkSpec::default());
        up_down_arbitrary(&b.topo, b.hosts[0]);
    }
}
