//! Structured buffer pools (the §2 baseline: Gerla & Kleinrock, Karol et
//! al.) — "a packet is allowed to access more buffer classes as it travels
//! greater distance in the network. [...] as long as the number of buffer
//! classes is no smaller than the hop count of the longest routing path,
//! there will be no cyclic buffer dependency."
//!
//! The planner computes the class count a (topology, workload) needs, and
//! reports the paper's criticism quantitatively: networks of large
//! diameter need many classes and per-class buffer, while "commodity
//! switches with shallow buffer can support at most 2 lossless traffic
//! classes".

use serde::{Deserialize, Serialize};

use pfcsim_net::config::SimConfig;
use pfcsim_net::flow::{FlowSpec, RouteKind};
use pfcsim_simcore::units::Bytes;
use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::NodeId;
use pfcsim_topo::routing::{bfs_distances, trace_path, ForwardingTables};

/// Feasibility report for the structured-buffer-pool baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferClassPlan {
    /// Classes required: the max switch-hop count over the workload (or
    /// the topology's host-to-host diameter for the all-pairs guarantee).
    pub classes_required: u8,
    /// Classes the hardware offers (802.1p: 8; commodity lossless: 2).
    pub classes_available: u8,
    /// Per-class buffer if the shared buffer is split evenly.
    pub per_class_buffer: Bytes,
    /// The configured PFC threshold each class must still accommodate.
    pub xoff: Bytes,
}

impl BufferClassPlan {
    /// Deadlock freedom is guaranteed only with enough classes.
    pub fn is_deadlock_free(&self) -> bool {
        self.classes_required <= self.classes_available
    }

    /// Each class must hold at least one XOFF threshold of buffer, or the
    /// scheme cannot even assert back-pressure correctly.
    pub fn is_buffer_feasible(&self) -> bool {
        self.per_class_buffer >= self.xoff
    }

    /// The `SimConfig` knob that enacts this plan in the simulator.
    pub fn sim_classes(&self) -> u8 {
        self.classes_required.min(self.classes_available).min(8)
    }

    /// Apply to a config: enable hop-laddered classes.
    pub fn apply(&self, cfg: &mut SimConfig) {
        cfg.hop_class_mode = Some(self.sim_classes().max(1));
    }
}

/// Longest switch-hop path any host pair can take under `tables`.
pub fn max_route_hops(topo: &Topology, tables: &ForwardingTables) -> u8 {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let mut max = 0u8;
    let mut flow = 0u32;
    for &s in &hosts {
        for &d in &hosts {
            if s == d {
                continue;
            }
            let t = trace_path(
                topo,
                tables,
                pfcsim_topo::ids::FlowId(flow),
                s,
                d,
                4 * topo.node_count(),
            );
            flow += 1;
            let switch_hops = t
                .nodes()
                .iter()
                .filter(|&&n| topo.node(n).kind == NodeKind::Switch)
                .count();
            max = max.max(u8::try_from(switch_hops.min(255)).expect("capped"));
        }
    }
    max
}

/// Topology diameter in switch hops (shortest paths, host to host).
pub fn switch_diameter(topo: &Topology) -> u8 {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let mut max = 0u32;
    for &h in &hosts {
        let dist = bfs_distances(topo, h);
        for &other in &hosts {
            if other != h {
                if let Some(d) = dist[other.0 as usize] {
                    // host->host hops include 2 host links.
                    max = max.max(d.saturating_sub(1));
                }
            }
        }
    }
    u8::try_from(max.min(255)).expect("capped")
}

/// Plan buffer classes for a workload.
pub fn plan_for_workload(
    topo: &Topology,
    tables: &ForwardingTables,
    specs: &[FlowSpec],
    classes_available: u8,
    shared_buffer: Bytes,
    xoff: Bytes,
) -> BufferClassPlan {
    let mut required = 0u8;
    for spec in specs {
        let hops = match &spec.route {
            RouteKind::Pinned(p) => p
                .nodes
                .iter()
                .filter(|&&n| topo.node(n).kind == NodeKind::Switch)
                .count(),
            RouteKind::Tables => {
                let t = trace_path(topo, tables, spec.id, spec.src, spec.dst, spec.ttl as usize);
                t.nodes()
                    .iter()
                    .filter(|&&n| topo.node(n).kind == NodeKind::Switch)
                    .count()
            }
        };
        required = required.max(u8::try_from(hops.min(255)).expect("capped"));
    }
    let denom = required.max(1) as u64;
    BufferClassPlan {
        classes_required: required,
        classes_available,
        per_class_buffer: Bytes::new(shared_buffer.get() / denom),
        xoff,
    }
}

/// Plan for the all-pairs guarantee over the tables.
pub fn plan_all_pairs(
    topo: &Topology,
    tables: &ForwardingTables,
    classes_available: u8,
    shared_buffer: Bytes,
    xoff: Bytes,
) -> BufferClassPlan {
    let required = max_route_hops(topo, tables);
    let denom = required.max(1) as u64;
    BufferClassPlan {
        classes_required: required,
        classes_available,
        per_class_buffer: Bytes::new(shared_buffer.get() / denom),
        xoff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_topo::builders::{fat_tree, line, LinkSpec};
    use pfcsim_topo::routing::{shortest_path_tables, up_down_tables};

    #[test]
    fn fat_tree_diameter_and_class_need() {
        let b = fat_tree(4, LinkSpec::default());
        assert_eq!(switch_diameter(&b.topo), 5, "edge-agg-core-agg-edge");
        let tables = up_down_tables(&b.topo);
        let plan = plan_all_pairs(&b.topo, &tables, 8, Bytes::from_mb(12), Bytes::from_kb(40));
        assert_eq!(plan.classes_required, 5);
        assert!(plan.is_deadlock_free(), "8 classes >= 5");
        assert!(plan.is_buffer_feasible());
    }

    #[test]
    fn commodity_two_class_switches_cannot_cover_fat_tree() {
        let b = fat_tree(4, LinkSpec::default());
        let tables = up_down_tables(&b.topo);
        let plan = plan_all_pairs(
            &b.topo,
            &tables,
            2, // the paper: commodity switches support at most 2 lossless classes
            Bytes::from_mb(12),
            Bytes::from_kb(40),
        );
        assert!(!plan.is_deadlock_free(), "2 < 5 required classes");
    }

    #[test]
    fn long_line_needs_classes_linear_in_length() {
        let b = line(7, LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let plan = plan_all_pairs(&b.topo, &tables, 8, Bytes::from_mb(12), Bytes::from_kb(40));
        assert_eq!(plan.classes_required, 7);
        assert_eq!(plan.per_class_buffer, Bytes::new(12_000_000 / 7));
    }

    #[test]
    fn shallow_buffer_becomes_infeasible() {
        let b = line(7, LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        // A shallow-buffer commodity chip: 250 KB shared.
        let plan = plan_all_pairs(&b.topo, &tables, 8, Bytes::from_kb(250), Bytes::from_kb(40));
        assert!(!plan.is_buffer_feasible(), "250/7 KB < 40 KB threshold");
    }

    #[test]
    fn workload_plan_uses_actual_paths() {
        use pfcsim_net::flow::FlowSpec;
        let b = line(5, LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        // Short flow: 2 switches only.
        let specs = vec![FlowSpec::infinite(0, b.hosts[0], b.hosts[1])];
        let plan = plan_for_workload(
            &b.topo,
            &tables,
            &specs,
            8,
            Bytes::from_mb(12),
            Bytes::from_kb(40),
        );
        assert_eq!(plan.classes_required, 2);
        let mut cfg = SimConfig::default();
        plan.apply(&mut cfg);
        assert_eq!(cfg.hop_class_mode, Some(2));
    }
}
