//! # pfcsim-mitigation — deadlock mitigation planners (paper §4) and the
//! §2 baselines
//!
//! Mechanisms that avoid deadlock *despite* cyclic buffer dependency:
//!
//! * [`ttl_class`] — TTL-band priority classes raise the loop threshold to
//!   `n·B / class_width`;
//! * [`rate_plan`] — shaper placement from the boundary model and from a
//!   workload's BDG;
//! * [`tiering`] — position-dependent PFC thresholds to keep pauses near
//!   sources and let the fabric core absorb bursts;
//!
//! and the conservative baselines the paper argues are too expensive:
//!
//! * [`buffer_classes`] — structured buffer pools (classes ≥ max hops);
//! * [`routing_restriction`] — up*/down* on arbitrary topologies, with a
//!   quantified path-stretch cost;
//! * [`lash`] — layered shortest-path routing (deadlock freedom at zero
//!   stretch, paid in priority classes);
//! * [`turn_model`] — dimension-order (XY) routing for meshes;
//! * [`repair`] — surgical CBD repair: re-path only the flows that close
//!   a cycle.
//!
//! ```
//! use pfcsim_mitigation::prelude::*;
//! use pfcsim_simcore::units::BitRate;
//!
//! // Rate limiting (§4): cap a loop's injector 20% under the Eq. 3
//! // threshold (n=2, B=40 Gbps, TTL=16 → 5 Gbps → 4 Gbps cap).
//! let cap = loop_rate_cap(2, BitRate::from_gbps(40), 16, 0.8);
//! assert_eq!(cap, BitRate::from_gbps(4));
//! ```

#![warn(missing_docs)]

pub mod buffer_classes;
pub mod lash;
pub mod rate_plan;
pub mod repair;
pub mod routing_restriction;
pub mod tiering;
pub mod ttl_class;
pub mod turn_model;

/// Common imports.
pub mod prelude {
    pub use crate::buffer_classes::{
        max_route_hops, plan_all_pairs, plan_for_workload as plan_buffer_classes, switch_diameter,
        BufferClassPlan,
    };
    pub use crate::lash::{lash_assign, LashAssignment, LashOverflow};
    pub use crate::rate_plan::{
        loop_rate_cap, plan_for_workload as plan_rate_limits, RatePlan, ShaperDirective,
    };
    pub use crate::repair::{plan_repair, RepairFailed, RepairPlan, Repath};
    pub use crate::routing_restriction::{restriction_cost, up_down_arbitrary, RestrictionCost};
    pub use crate::tiering::{
        plan_tiered_thresholds, ThresholdDirective, TieringPlan, TieringPolicy,
    };
    pub use crate::ttl_class::TtlClassPlan;
    pub use crate::turn_model::xy_routing;
}
