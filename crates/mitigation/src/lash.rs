//! LASH — LAyered SHortest-path routing (Skeie, Lysne & Theiss; the
//! paper's citation \[20\]).
//!
//! Keep *shortest* paths (no stretch, unlike up*/down*) and instead
//! partition them into layers — priority classes with independent PFC
//! state — such that every layer's buffer dependency graph is acyclic.
//! Greedy first-fit: each path goes into the first layer it doesn't close
//! a cycle in; a new layer is opened when none fits.
//!
//! The trade: deadlock freedom at full path efficiency, paid in lossless
//! classes — which commodity switches have at most 2 of (paper §1), so
//! feasibility is exactly the question [`lash_assign`] answers.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use pfcsim_core::bdg::BufferDependencyGraph;
use pfcsim_net::flow::FlowSpec;
use pfcsim_topo::graph::Topology;
use pfcsim_topo::ids::{FlowId, NodeId, Priority};

/// Result of a LASH layering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LashAssignment {
    /// Layer (0-based) per flow.
    pub layer_of: BTreeMap<FlowId, u8>,
    /// Number of layers used.
    pub layer_count: u8,
    /// First 802.1p class used; flow priority = `base_class + layer`.
    pub base_class: u8,
}

impl LashAssignment {
    /// The priority class assigned to `flow`.
    pub fn class_of(&self, flow: FlowId) -> Priority {
        Priority(self.base_class + self.layer_of[&flow])
    }

    /// Rewrite flow priorities per the assignment.
    pub fn apply(&self, specs: &mut [FlowSpec]) {
        for s in specs.iter_mut() {
            if let Some(&layer) = self.layer_of.get(&s.id) {
                s.priority = Priority(self.base_class + layer);
            }
        }
    }
}

/// LASH failure: the path set needs more layers than available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LashOverflow {
    /// Layers that would have been needed so far (≥ max requested).
    pub needed: u8,
    /// The flow that could not be placed.
    pub unplaced: FlowId,
}

/// Assign `paths` (flow id, node path) to at most `max_layers` layers with
/// acyclic per-layer dependency graphs. Deterministic: first-fit in the
/// given order.
pub fn lash_assign(
    topo: &Topology,
    paths: &[(FlowId, Vec<NodeId>)],
    base_class: u8,
    max_layers: u8,
) -> Result<LashAssignment, LashOverflow> {
    assert!(max_layers >= 1, "need at least one layer");
    assert!(
        base_class + max_layers <= 8,
        "layers exceed the 802.1p class range"
    );
    let mut layers: Vec<BufferDependencyGraph> = Vec::new();
    let mut layer_of = BTreeMap::new();
    for (flow, path) in paths {
        let mut placed = false;
        for (li, g) in layers.iter_mut().enumerate() {
            let mut trial = g.clone();
            trial.add_path(topo, path, Priority(base_class + li as u8), None);
            if !trial.has_cbd() {
                *g = trial;
                layer_of.insert(*flow, li as u8);
                placed = true;
                break;
            }
        }
        if !placed {
            if layers.len() as u8 >= max_layers {
                return Err(LashOverflow {
                    needed: layers.len() as u8 + 1,
                    unplaced: *flow,
                });
            }
            let li = layers.len() as u8;
            let mut g = BufferDependencyGraph::new();
            g.add_path(topo, path, Priority(base_class + li), None);
            debug_assert!(!g.has_cbd(), "a single simple path cannot be cyclic");
            layers.push(g);
            layer_of.insert(*flow, li);
        }
    }
    Ok(LashAssignment {
        layer_of,
        layer_count: layers.len() as u8,
        base_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_topo::builders::{ring, square, LinkSpec};

    fn square_fig4_paths(b: &pfcsim_topo::builders::Built) -> Vec<(FlowId, Vec<NodeId>)> {
        let (s, h) = (&b.switches, &b.hosts);
        vec![
            (FlowId(1), vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
            (FlowId(2), vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
            (FlowId(3), vec![h[1], s[1], s[2], h[2]]),
        ]
    }

    #[test]
    fn fig4_needs_exactly_two_layers() {
        let b = square(LinkSpec::default());
        let paths = square_fig4_paths(&b);
        let a = lash_assign(&b.topo, &paths, 0, 8).unwrap();
        assert_eq!(
            a.layer_count, 2,
            "flows 1+3 fit one layer; flow 2 closes the ring"
        );
        // Flows 1 and 2 must be separated (they alone form the cycle).
        assert_ne!(a.layer_of[&FlowId(1)], a.layer_of[&FlowId(2)]);
    }

    #[test]
    fn overflow_reported_when_classes_exhausted() {
        let b = square(LinkSpec::default());
        let paths = square_fig4_paths(&b);
        let err = lash_assign(&b.topo, &paths, 0, 1).unwrap_err();
        assert_eq!(err.needed, 2);
        assert_eq!(err.unplaced, FlowId(2));
    }

    #[test]
    fn ring_all_pairs_layering_is_acyclic_per_layer() {
        use pfcsim_topo::ids::Priority;
        use pfcsim_topo::routing::{shortest_path_tables, trace_path};
        let b = ring(5, LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let mut paths = Vec::new();
        let mut id = 0u32;
        for &s in &b.hosts {
            for &d in &b.hosts {
                if s == d {
                    continue;
                }
                let t = trace_path(&b.topo, &tables, FlowId(id), s, d, 32);
                assert!(t.delivered());
                paths.push((FlowId(id), t.nodes().to_vec()));
                id += 1;
            }
        }
        let a = lash_assign(&b.topo, &paths, 0, 8).unwrap();
        assert!(a.layer_count >= 2, "the ring needs separation");
        assert!(
            a.layer_count <= 3,
            "small rings layer cheaply: {}",
            a.layer_count
        );
        // Verify: rebuild each layer's BDG and check acyclicity.
        for layer in 0..a.layer_count {
            let mut g = BufferDependencyGraph::new();
            for (f, p) in &paths {
                if a.layer_of[f] == layer {
                    g.add_path(&b.topo, p, Priority(layer), None);
                }
            }
            assert!(!g.has_cbd(), "layer {layer} must be acyclic");
        }
    }

    #[test]
    fn apply_rewrites_priorities() {
        let b = square(LinkSpec::default());
        let paths = square_fig4_paths(&b);
        let a = lash_assign(&b.topo, &paths, 2, 4).unwrap();
        let mut specs = vec![
            FlowSpec::infinite(1, b.hosts[0], b.hosts[3]),
            FlowSpec::infinite(2, b.hosts[2], b.hosts[1]),
            FlowSpec::infinite(3, b.hosts[1], b.hosts[2]),
        ];
        a.apply(&mut specs);
        for s in &specs {
            assert!(s.priority.0 >= 2 && s.priority.0 < 2 + a.layer_count);
        }
    }
}
