//! CBD repair by selective re-pathing.
//!
//! Given a workload whose buffer dependency graph is cyclic, find a small
//! set of flows to re-path (onto alternate simple paths in the topology)
//! such that the resulting BDG is acyclic — routing restriction applied
//! *surgically* to the flows that need it, instead of restricting the
//! whole network. Greedy: while a cycle exists, take one witness cycle,
//! try each contributing flow in order, and re-path it along its best
//! alternate path whose dependencies don't re-close a cycle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use pfcsim_core::bdg::{BufferDependencyGraph, RxQueue};
use pfcsim_net::flow::{FlowSpec, RouteKind};
use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::{FlowId, NodeId};
use pfcsim_topo::routing::{trace_path, ForwardingTables, PinnedPath};

/// One re-path directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repath {
    /// The flow to move.
    pub flow: FlowId,
    /// Its original switch-hop count.
    pub old_hops: usize,
    /// The new pinned path (host → … → host).
    pub new_path: Vec<NodeId>,
}

/// Result of a repair attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairPlan {
    /// Flows to re-path, in application order.
    pub repaths: Vec<Repath>,
}

impl RepairPlan {
    /// Apply to the specs: re-pathed flows become pinned to their new path.
    pub fn apply(&self, specs: &mut [FlowSpec]) {
        for r in &self.repaths {
            if let Some(spec) = specs.iter_mut().find(|s| s.id == r.flow) {
                spec.route = RouteKind::Pinned(PinnedPath {
                    nodes: r.new_path.clone(),
                });
            }
        }
    }

    /// Total extra switch hops introduced.
    pub fn added_hops(&self) -> usize {
        self.repaths
            .iter()
            .map(|r| {
                let new_hops = r.new_path.len().saturating_sub(2);
                new_hops.saturating_sub(r.old_hops)
            })
            .sum()
    }
}

/// Repair failed: no acyclic re-pathing was found greedily.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairFailed {
    /// A cycle that could not be broken.
    pub stuck_cycle: Vec<RxQueue>,
}

/// The current node path of a flow under the tables.
fn path_of(topo: &Topology, tables: &ForwardingTables, spec: &FlowSpec) -> Vec<NodeId> {
    match &spec.route {
        RouteKind::Pinned(p) => p.nodes.clone(),
        RouteKind::Tables => trace_path(topo, tables, spec.id, spec.src, spec.dst, 64)
            .nodes()
            .to_vec(),
    }
}

/// Enumerate up to `limit` simple host-to-host paths between two hosts,
/// shortest first (BFS over partial simple paths).
fn alternate_paths(topo: &Topology, src: NodeId, dst: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut q: VecDeque<Vec<NodeId>> = VecDeque::from([vec![src]]);
    // Cap the frontier to keep this bounded on dense graphs.
    let mut expansions = 0usize;
    while let Some(path) = q.pop_front() {
        if out.len() >= limit || expansions > 50_000 {
            break;
        }
        expansions += 1;
        let last = *path.last().expect("nonempty");
        if last == dst {
            out.push(path);
            continue;
        }
        // Hosts other than src/dst cannot be transited.
        if topo.node(last).kind == NodeKind::Host && path.len() > 1 {
            continue;
        }
        for p in topo.ports(last) {
            let next = p.peer;
            if path.contains(&next) {
                continue;
            }
            if topo.node(next).kind == NodeKind::Host && next != dst {
                continue;
            }
            if path.len() > 10 {
                continue; // bound path length
            }
            let mut np = path.clone();
            np.push(next);
            q.push_back(np);
        }
    }
    out
}

/// Compute a repair plan for the workload, or fail with a stuck cycle.
pub fn plan_repair(
    topo: &Topology,
    tables: &ForwardingTables,
    specs: &[FlowSpec],
) -> Result<RepairPlan, RepairFailed> {
    // Working copy of flow paths.
    let mut paths: BTreeMap<FlowId, Vec<NodeId>> = specs
        .iter()
        .map(|s| (s.id, path_of(topo, tables, s)))
        .collect();
    let build = |paths: &BTreeMap<FlowId, Vec<NodeId>>, specs: &[FlowSpec]| {
        let mut g = BufferDependencyGraph::new();
        for s in specs {
            g.add_path(topo, &paths[&s.id], s.priority, None);
        }
        g
    };
    let mut repaths = Vec::new();
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard <= 64, "repair did not converge");
        let g = build(&paths, specs);
        let Some(cycle) = g.cbd_cycles(1).into_iter().next() else {
            return Ok(RepairPlan { repaths });
        };
        let cycle_queues: BTreeSet<RxQueue> = cycle.iter().copied().collect();
        // Flows whose current path touches the cycle, longest first (they
        // contribute the most dependencies).
        let mut candidates: Vec<FlowId> = specs
            .iter()
            .filter(|s| {
                let p = &paths[&s.id];
                p.windows(2).any(|w| {
                    topo.node(w[1]).kind == NodeKind::Switch
                        && topo.port_towards(w[1], w[0]).is_some_and(|port| {
                            cycle_queues.contains(&RxQueue {
                                node: w[1],
                                port: port.port,
                                priority: s.priority,
                            })
                        })
                })
            })
            .map(|s| s.id)
            .collect();
        candidates.sort_by_key(|f| std::cmp::Reverse(paths[f].len()));

        let mut fixed = false;
        'cands: for flow in candidates {
            let spec = specs.iter().find(|s| s.id == flow).expect("known flow");
            let old = paths[&flow].clone();
            for alt in alternate_paths(topo, spec.src, spec.dst, 12) {
                if alt == old {
                    continue;
                }
                let mut trial = paths.clone();
                trial.insert(flow, alt.clone());
                if !build(&trial, specs).has_cbd() {
                    repaths.push(Repath {
                        flow,
                        old_hops: old.len().saturating_sub(2),
                        new_path: alt,
                    });
                    paths = trial;
                    fixed = true;
                    break 'cands;
                }
            }
        }
        if !fixed {
            // Also try the weaker goal: break just this cycle (progress),
            // even if another remains.
            'cands2: for &flow in paths.keys().collect::<Vec<_>>().iter() {
                let spec = specs.iter().find(|s| s.id == *flow).expect("known");
                let old = paths[flow].clone();
                for alt in alternate_paths(topo, spec.src, spec.dst, 12) {
                    if alt == old {
                        continue;
                    }
                    let mut trial = paths.clone();
                    trial.insert(*flow, alt.clone());
                    let g2 = build(&trial, specs);
                    let still_this_cycle = g2.cbd_cycles(8).iter().any(|c| {
                        c.iter().collect::<BTreeSet<_>>() == cycle.iter().collect::<BTreeSet<_>>()
                    });
                    if !still_this_cycle
                        && g2.cbd_cycles(8).len() < build(&paths, specs).cbd_cycles(8).len()
                    {
                        repaths.push(Repath {
                            flow: *flow,
                            old_hops: old.len().saturating_sub(2),
                            new_path: alt,
                        });
                        paths = trial;
                        fixed = true;
                        break 'cands2;
                    }
                }
            }
        }
        if !fixed {
            return Err(RepairFailed { stuck_cycle: cycle });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_core::freedom::verify_workload;
    use pfcsim_topo::builders::{square, LinkSpec};

    fn fig4_specs(b: &pfcsim_topo::builders::Built) -> Vec<FlowSpec> {
        let (s, h) = (&b.switches, &b.hosts);
        vec![
            FlowSpec::infinite(1, h[0], h[3]).pinned(vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
            FlowSpec::infinite(2, h[2], h[1]).pinned(vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
            FlowSpec::infinite(3, h[1], h[2]).pinned(vec![h[1], s[1], s[2], h[2]]),
        ]
    }

    #[test]
    fn repairs_fig4_with_one_repath() {
        let b = square(LinkSpec::default());
        let tables = pfcsim_topo::routing::shortest_path_tables(&b.topo);
        let mut specs = fig4_specs(&b);
        assert!(
            verify_workload(&b.topo, &tables, &specs).is_err(),
            "starts cyclic"
        );
        let plan = plan_repair(&b.topo, &tables, &specs).expect("repairable");
        assert!(!plan.repaths.is_empty());
        assert!(plan.repaths.len() <= 2, "the square needs few repaths");
        plan.apply(&mut specs);
        verify_workload(&b.topo, &tables, &specs).expect("acyclic after repair");
    }

    #[test]
    fn repaired_fig4_does_not_deadlock_in_simulation() {
        use pfcsim_net::config::SimConfig;
        use pfcsim_net::sim::SimBuilder;
        use pfcsim_simcore::time::SimTime;
        let b = square(LinkSpec::default());
        let tables = pfcsim_topo::routing::shortest_path_tables(&b.topo);
        let mut specs = fig4_specs(&b);
        let plan = plan_repair(&b.topo, &tables, &specs).expect("repairable");
        plan.apply(&mut specs);
        let mut sim = SimBuilder::new(&b.topo)
            .config(SimConfig::default())
            .tables(tables)
            .build();
        for f in specs {
            sim.add_flow(f);
        }
        let report = sim.run(SimTime::from_ms(8));
        assert!(!report.verdict.is_deadlock(), "repair must hold at runtime");
    }

    #[test]
    fn acyclic_workload_needs_no_repair() {
        let b = square(LinkSpec::default());
        let tables = pfcsim_topo::routing::shortest_path_tables(&b.topo);
        let specs = vec![FlowSpec::infinite(0, b.hosts[0], b.hosts[1])];
        let plan = plan_repair(&b.topo, &tables, &specs).expect("already fine");
        assert!(plan.repaths.is_empty());
        assert_eq!(plan.added_hops(), 0);
    }

    #[test]
    fn alternate_paths_are_simple_and_shortest_first() {
        let b = square(LinkSpec::default());
        let paths = alternate_paths(&b.topo, b.hosts[0], b.hosts[2], 8);
        assert!(paths.len() >= 2, "square has two host0->host2 routes");
        // Sorted by length (BFS order).
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        for p in &paths {
            let set: BTreeSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "simple paths only");
        }
    }
}
