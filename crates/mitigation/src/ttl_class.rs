//! TTL-based class partitioning (paper §4, "TTL-based mitigation for
//! deadlock caused by loops").
//!
//! PFC pauses per priority class, so if packets whose TTLs differ by at
//! least `X` are assigned to different classes, the *effective* TTL inside
//! any one class is at most `X`, and the loop-deadlock threshold rises
//! from `n·B/TTL` to `n·B/X`. With `X ≤ n` (the loop length), the
//! threshold reaches line rate and no injector can cause deadlock.

use serde::{Deserialize, Serialize};

use pfcsim_core::boundary::BoundaryModel;
use pfcsim_net::flow::FlowSpec;
use pfcsim_simcore::units::BitRate;
use pfcsim_topo::ids::Priority;

/// A TTL→class partition plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtlClassPlan {
    /// Band width `X`: TTLs in `[k·X, (k+1)·X)` share a class.
    pub class_width: u8,
    /// Lowest priority used; bands map to `base_class + k` (mod the
    /// available range).
    pub base_class: u8,
    /// Number of priority classes available (lossless classes on the
    /// switch; commodity switches support at most 2 — paper §1).
    pub classes_available: u8,
}

impl TtlClassPlan {
    /// Build a plan; widths and ranges must be positive and fit 802.1p.
    pub fn new(class_width: u8, base_class: u8, classes_available: u8) -> Self {
        assert!(class_width >= 1, "class width must be positive");
        assert!(classes_available >= 1, "need at least one class");
        assert!(
            base_class + classes_available <= 8,
            "classes exceed the 802.1p range"
        );
        TtlClassPlan {
            class_width,
            base_class,
            classes_available,
        }
    }

    /// The class for an initial TTL value.
    pub fn class_for_ttl(&self, ttl: u8) -> Priority {
        let band = ttl / self.class_width;
        Priority(self.base_class + band % self.classes_available)
    }

    /// Whether the plan achieves the intended separation: with enough
    /// classes to give every band in `[0, max_ttl]` a distinct class, the
    /// effective TTL within any class is at most `class_width`.
    pub fn fully_separates(&self, max_ttl: u8) -> bool {
        max_ttl / self.class_width < self.classes_available
    }

    /// Effective TTL spread within one class, for TTLs up to `max_ttl`.
    /// If bands alias (not enough classes), the spread degrades back
    /// toward the full range.
    pub fn effective_ttl(&self, max_ttl: u8) -> u8 {
        if self.fully_separates(max_ttl) {
            self.class_width
        } else {
            max_ttl
        }
    }

    /// The resulting loop-deadlock threshold for an `n`-switch loop at
    /// bandwidth `B` (Eq. 3 with the effective TTL).
    pub fn deadlock_threshold(&self, loop_len: u32, bandwidth: BitRate, max_ttl: u8) -> BitRate {
        let eff = self.effective_ttl(max_ttl).max(1);
        BoundaryModel::new(loop_len, bandwidth, eff as u32).deadlock_threshold()
    }

    /// Apply the plan to a workload: every flow's priority becomes the
    /// class of its initial TTL.
    pub fn apply(&self, specs: &mut [FlowSpec]) {
        for s in specs.iter_mut() {
            s.priority = self.class_for_ttl(s.ttl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_topo::ids::NodeId;

    #[test]
    fn banding_maps_ttl_ranges() {
        let p = TtlClassPlan::new(4, 2, 4);
        assert_eq!(p.class_for_ttl(0), Priority(2));
        assert_eq!(p.class_for_ttl(3), Priority(2));
        assert_eq!(p.class_for_ttl(4), Priority(3));
        assert_eq!(p.class_for_ttl(15), Priority(5));
        // Aliasing beyond the range wraps.
        assert_eq!(p.class_for_ttl(16), Priority(2));
    }

    #[test]
    fn separation_depends_on_class_budget() {
        let p = TtlClassPlan::new(4, 0, 4);
        assert!(p.fully_separates(15), "4 bands for TTL<=15");
        assert!(!p.fully_separates(16), "band 4 would alias band 0");
        assert_eq!(p.effective_ttl(15), 4);
        assert_eq!(p.effective_ttl(64), 64, "aliasing destroys the benefit");
    }

    #[test]
    fn threshold_rises_with_separation() {
        // Paper's loop: n=2, B=40G. Flat TTL 16 ⇒ 5 Gbps. Width-4 classes
        // (fully separated) ⇒ 2*40/4 = 20 Gbps.
        let p = TtlClassPlan::new(4, 0, 4);
        assert_eq!(
            p.deadlock_threshold(2, BitRate::from_gbps(40), 15),
            BitRate::from_gbps(20)
        );
        // Width 2 = loop length ⇒ threshold = B: unconditionally safe.
        let p2 = TtlClassPlan::new(2, 0, 8);
        assert_eq!(
            p2.deadlock_threshold(2, BitRate::from_gbps(40), 15),
            BitRate::from_gbps(40)
        );
    }

    #[test]
    fn apply_rewrites_flow_priorities() {
        let p = TtlClassPlan::new(8, 1, 2);
        let mut specs = vec![
            FlowSpec::infinite(0, NodeId(0), NodeId(1)).with_ttl(5),
            FlowSpec::infinite(1, NodeId(0), NodeId(1)).with_ttl(12),
        ];
        p.apply(&mut specs);
        assert_eq!(specs[0].priority, Priority(1));
        assert_eq!(specs[1].priority, Priority(2));
    }

    #[test]
    #[should_panic(expected = "802.1p")]
    fn class_range_overflow_rejected() {
        TtlClassPlan::new(4, 6, 4);
    }
}
