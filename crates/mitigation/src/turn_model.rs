//! Turn-model routing for 2-D meshes: dimension-order (XY) routing, the
//! classic Dally–Seitz-style restriction behind the odd-even turn model
//! family the paper cites (\[22\]).
//!
//! XY routing forbids every Y→X turn: packets exhaust their horizontal
//! hops before any vertical hop. Buffer dependencies can therefore never
//! cycle (X-channel → X-channel edges are monotone along a row, X→Y edges
//! cross dimensions exactly once, Y→Y edges are monotone along a column),
//! and — unlike up*/down* — **every XY path is shortest**: deadlock
//! freedom with zero stretch when the topology has the right structure.

use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::NodeId;
use pfcsim_topo::routing::ForwardingTables;

/// Coordinates of mesh switches, inferred from the `M{row}-{col}` names
/// produced by [`pfcsim_topo::builders::mesh2d`].
fn coords(topo: &Topology, node: NodeId) -> Option<(i64, i64)> {
    let name = &topo.node(node).name;
    let rest = name.strip_prefix('M')?;
    let (r, c) = rest.split_once('-')?;
    Some((r.parse().ok()?, c.parse().ok()?))
}

/// Build XY (dimension-order) forwarding tables for a [`mesh2d`]
/// topology: route along the row first, then the column.
///
/// # Panics
/// Panics if a switch lacks mesh coordinates (not built by `mesh2d`).
///
/// [`mesh2d`]: pfcsim_topo::builders::mesh2d
pub fn xy_routing(topo: &Topology) -> ForwardingTables {
    let mut ft = ForwardingTables::empty(topo);
    let hosts: Vec<NodeId> = topo.hosts().collect();
    for &dst in &hosts {
        // The destination's switch and coordinates.
        let dst_sw = topo.ports(dst)[0].peer;
        let (dr, dc) = coords(topo, dst_sw).expect("mesh2d names required");
        for node in topo.nodes() {
            if node.kind != NodeKind::Switch {
                continue;
            }
            let (r, c) = coords(topo, node.id).expect("mesh2d names required");
            // Decide the XY next hop.
            let next_coord = if c != dc {
                (r, if dc > c { c + 1 } else { c - 1 })
            } else if r != dr {
                (if dr > r { r + 1 } else { r - 1 }, c)
            } else {
                // At the destination switch: deliver to the host.
                let port = topo
                    .port_towards(node.id, dst)
                    .expect("host attached to its switch");
                ft.set(node.id, dst, vec![port.port]);
                continue;
            };
            let next = topo
                .ports(node.id)
                .iter()
                .find(|p| {
                    topo.node(p.peer).kind == NodeKind::Switch
                        && coords(topo, p.peer) == Some(next_coord)
                })
                .unwrap_or_else(|| panic!("mesh neighbor {next_coord:?} of {} missing", node.name));
            ft.set(node.id, dst, vec![next.port]);
        }
    }
    ft
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_core::freedom::verify_all_pairs;
    use pfcsim_topo::builders::{mesh2d, LinkSpec};
    use pfcsim_topo::ids::{FlowId, Priority};
    use pfcsim_topo::routing::{path_stretch, trace_path};

    #[test]
    fn xy_routing_is_deadlock_free_on_meshes() {
        for (r, c) in [(2usize, 2usize), (3, 3), (3, 5), (4, 4)] {
            let b = mesh2d(r, c, LinkSpec::default());
            let ft = xy_routing(&b.topo);
            verify_all_pairs(&b.topo, &ft, Priority::DEFAULT)
                .unwrap_or_else(|e| panic!("{r}x{c}: {e:?}"));
        }
    }

    #[test]
    fn xy_routing_has_zero_stretch() {
        let b = mesh2d(4, 4, LinkSpec::default());
        let ft = xy_routing(&b.topo);
        let (mean, max, unreachable) = path_stretch(&b.topo, &ft);
        assert_eq!(unreachable, 0);
        assert!((mean - 1.0).abs() < 1e-9, "XY is shortest-path: {mean}");
        assert!((max - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xy_paths_never_turn_from_y_to_x() {
        let b = mesh2d(3, 4, LinkSpec::default());
        let ft = xy_routing(&b.topo);
        let mut id = 0u32;
        for &s in &b.hosts {
            for &d in &b.hosts {
                if s == d {
                    continue;
                }
                let t = trace_path(&b.topo, &ft, FlowId(id), s, d, 32);
                id += 1;
                assert!(t.delivered());
                // Extract switch coordinates; once the column changes stop,
                // it must never change again.
                let cs: Vec<(i64, i64)> = t
                    .nodes()
                    .iter()
                    .filter_map(|&n| coords(&b.topo, n))
                    .collect();
                let mut moved_vertically = false;
                for w in cs.windows(2) {
                    if w[0].0 != w[1].0 {
                        moved_vertically = true;
                    } else if w[0].1 != w[1].1 {
                        assert!(!moved_vertically, "Y->X turn in {cs:?}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mesh2d names required")]
    fn non_mesh_topology_rejected() {
        let b = pfcsim_topo::builders::ring(4, LinkSpec::default());
        let _ = xy_routing(&b.topo);
    }
}
