//! Rate-limit planning (paper §4, "Rate limiting").
//!
//! "If we are able to predict the rate threshold for deadlock, we may
//! bound the individual flow rate by that threshold on switches that are
//! involved in cyclic buffer dependency" — this module computes those
//! bounds from the boundary-state model and from a workload's BDG, and
//! emits concrete shaper directives for the simulator.

use serde::{Deserialize, Serialize};

use pfcsim_core::bdg::BufferDependencyGraph;
use pfcsim_core::boundary::BoundaryModel;
use pfcsim_net::flow::{FlowSpec, RouteKind};
use pfcsim_net::sim::NetSim;
use pfcsim_simcore::units::{BitRate, Bytes};
use pfcsim_topo::graph::Topology;
use pfcsim_topo::ids::{NodeId, PortNo};
use pfcsim_topo::routing::{trace_path, ForwardingTables};

/// One shaper to install: limit `(node, port)` ingress to `rate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShaperDirective {
    /// Switch.
    pub node: NodeId,
    /// Ingress port to shape.
    pub port: PortNo,
    /// Rate cap.
    pub rate: BitRate,
    /// Token-bucket burst.
    pub burst: Bytes,
}

/// A rate-limiting plan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatePlan {
    /// Shapers to install.
    pub directives: Vec<ShaperDirective>,
}

impl RatePlan {
    /// Install every directive on a simulator.
    pub fn apply(&self, sim: &mut NetSim) {
        for d in &self.directives {
            sim.try_set_ingress_shaper(d.node, d.port, d.rate, d.burst)
                .expect("set_ingress_shaper");
        }
    }

    /// True iff no shaping was deemed necessary.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }
}

/// The safe injection-rate cap for a known routing loop: `margin` times
/// the Eq. 3 threshold (margin < 1 leaves headroom).
pub fn loop_rate_cap(loop_len: u32, bandwidth: BitRate, ttl: u32, margin: f64) -> BitRate {
    BoundaryModel::new(loop_len, bandwidth, ttl).safe_rate(margin)
}

/// Plan shapers for a workload: find the flows whose paths traverse
/// CBD-involved switches *entering from a host* (the injection points the
/// paper's Case 3 limits), and cap each such ingress at `cap`.
///
/// The shaped ports are host-facing ingresses of switches that own a
/// cyclic RX queue — exactly "switches that are involved in cyclic buffer
/// dependency".
pub fn plan_for_workload(
    topo: &Topology,
    tables: &ForwardingTables,
    specs: &[FlowSpec],
    cap: BitRate,
    burst: Bytes,
) -> RatePlan {
    let g = BufferDependencyGraph::from_specs(topo, tables, specs);
    let cyclic_nodes: std::collections::BTreeSet<NodeId> =
        g.cyclic_queues().into_iter().map(|q| q.node).collect();
    let mut directives = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for spec in specs {
        let nodes: Vec<NodeId> = match &spec.route {
            RouteKind::Pinned(p) => p.nodes.clone(),
            RouteKind::Tables => {
                trace_path(topo, tables, spec.id, spec.src, spec.dst, spec.ttl as usize)
                    .nodes()
                    .to_vec()
            }
        };
        // First switch on the path: the flow's injection point.
        if nodes.len() < 2 {
            continue;
        }
        let first_switch = nodes[1];
        if !cyclic_nodes.contains(&first_switch) {
            continue;
        }
        let port = match topo.port_towards(first_switch, spec.src) {
            Some(p) => p.port,
            None => continue,
        };
        if seen.insert((first_switch, port)) {
            directives.push(ShaperDirective {
                node: first_switch,
                port,
                rate: cap,
                burst,
            });
        }
    }
    RatePlan { directives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_topo::builders::{line, square, LinkSpec};
    use pfcsim_topo::routing::shortest_path_tables;

    #[test]
    fn loop_cap_matches_boundary_model() {
        assert_eq!(
            loop_rate_cap(2, BitRate::from_gbps(40), 16, 1.0),
            BitRate::from_gbps(5)
        );
        assert_eq!(
            loop_rate_cap(2, BitRate::from_gbps(40), 16, 0.8),
            BitRate::from_gbps(4)
        );
    }

    #[test]
    fn acyclic_workload_needs_no_shapers() {
        let b = line(3, LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let specs = vec![FlowSpec::infinite(0, b.hosts[0], b.hosts[2])];
        let plan = plan_for_workload(
            &b.topo,
            &tables,
            &specs,
            BitRate::from_gbps(2),
            Bytes::from_kb(2),
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn square_cbd_workload_shapes_injection_points() {
        let b = square(LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let (s, h) = (&b.switches, &b.hosts);
        let specs = vec![
            FlowSpec::infinite(1, h[0], h[3]).pinned(vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
            FlowSpec::infinite(2, h[2], h[1]).pinned(vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
            FlowSpec::infinite(3, h[1], h[2]).pinned(vec![h[1], s[1], s[2], h[2]]),
        ];
        let plan = plan_for_workload(
            &b.topo,
            &tables,
            &specs,
            BitRate::from_gbps(2),
            Bytes::from_kb(2),
        );
        // All three flows inject at CBD switches (S0, S2, S1).
        assert_eq!(plan.directives.len(), 3);
        let nodes: std::collections::BTreeSet<NodeId> =
            plan.directives.iter().map(|d| d.node).collect();
        assert!(nodes.contains(&s[0]));
        assert!(nodes.contains(&s[1]));
        assert!(nodes.contains(&s[2]));
        for d in &plan.directives {
            assert_eq!(d.rate, BitRate::from_gbps(2));
        }
    }

    #[test]
    fn plan_applies_to_simulator() {
        use pfcsim_net::config::SimConfig;
        use pfcsim_net::sim::SimBuilder;
        let b = square(LinkSpec::default());
        let tables = shortest_path_tables(&b.topo);
        let (s, h) = (&b.switches, &b.hosts);
        let specs = vec![
            FlowSpec::infinite(1, h[0], h[3]).pinned(vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
            FlowSpec::infinite(2, h[2], h[1]).pinned(vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
        ];
        let plan = plan_for_workload(
            &b.topo,
            &tables,
            &specs,
            BitRate::from_gbps(3),
            Bytes::from_kb(2),
        );
        let mut sim = SimBuilder::new(&b.topo)
            .config(SimConfig::default())
            .build();
        for f in &specs {
            sim.add_flow(f.clone());
        }
        plan.apply(&mut sim); // must not panic
    }
}
