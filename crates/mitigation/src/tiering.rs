//! PFC-threshold tiering (paper §4, "Limiting PFC pause frames
//! propagation").
//!
//! "Assign different PFC thresholds to the ports of a switch based on
//! their position in the topology. Ports connecting to the downstream
//! (i.e. towards leaf) get smaller threshold, whereas ports connecting to
//! the upstream get larger threshold. [...] use switches with larger
//! threshold values at the higher tiers so that they can absorb small
//! bursts instead of generating PFC pause frames."

use serde::{Deserialize, Serialize};

use pfcsim_net::sim::NetSim;
use pfcsim_simcore::units::Bytes;
use pfcsim_topo::graph::{NodeKind, Topology};
use pfcsim_topo::ids::{NodeId, PortNo};

/// One per-port threshold override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdDirective {
    /// Switch.
    pub node: NodeId,
    /// Ingress port.
    pub port: PortNo,
    /// XOFF threshold.
    pub xoff: Bytes,
    /// XON threshold.
    pub xon: Bytes,
}

/// Tiering policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieringPolicy {
    /// Threshold for ports whose peer is *below* this switch (towards
    /// hosts) — small, so pauses are generated near the source.
    pub downstream_xoff: Bytes,
    /// Threshold for ports whose peer is *above* (towards spines/cores) —
    /// large, so upper tiers absorb bursts instead of pausing.
    pub upstream_xoff: Bytes,
    /// Extra XOFF added per tier of the owning switch (higher tiers absorb
    /// more).
    pub per_tier_bonus: Bytes,
    /// XON as a fraction of XOFF, in percent.
    pub xon_percent: u8,
}

impl Default for TieringPolicy {
    fn default() -> Self {
        TieringPolicy {
            downstream_xoff: Bytes::from_kb(20),
            upstream_xoff: Bytes::from_kb(80),
            per_tier_bonus: Bytes::from_kb(40),
            xon_percent: 50,
        }
    }
}

/// A computed tiering plan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieringPlan {
    /// Overrides to install.
    pub directives: Vec<ThresholdDirective>,
}

impl TieringPlan {
    /// Install on a simulator.
    pub fn apply(&self, sim: &mut NetSim) {
        for d in &self.directives {
            sim.try_set_port_thresholds(d.node, d.port, d.xoff, d.xon)
                .expect("set_port_thresholds");
        }
    }
}

/// Compute per-port thresholds for a tiered topology.
///
/// # Panics
/// Panics if a switch lacks a tier annotation.
pub fn plan_tiered_thresholds(topo: &Topology, policy: &TieringPolicy) -> TieringPlan {
    assert!(policy.xon_percent > 0 && policy.xon_percent <= 100);
    let mut directives = Vec::new();
    for node in topo.nodes() {
        if node.kind != NodeKind::Switch {
            continue;
        }
        let my_tier = node
            .tier
            .unwrap_or_else(|| panic!("switch {} has no tier", node.name));
        for p in topo.ports(node.id) {
            let peer = topo.node(p.peer);
            let peer_tier = peer.tier.unwrap_or(0);
            // Ingress from below (host or lower tier): small threshold so
            // the pause lands near the traffic source. Ingress from above:
            // large threshold to absorb bursts from the fabric core.
            let base = if peer_tier < my_tier {
                policy.downstream_xoff
            } else {
                policy.upstream_xoff
            };
            let bonus = Bytes::new(policy.per_tier_bonus.get() * my_tier.saturating_sub(1) as u64);
            let xoff = base + bonus;
            let xon = Bytes::new(xoff.get() * policy.xon_percent as u64 / 100);
            directives.push(ThresholdDirective {
                node: node.id,
                port: p.port,
                xoff,
                xon,
            });
        }
    }
    TieringPlan { directives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfcsim_topo::builders::{fat_tree, leaf_spine, LinkSpec};

    #[test]
    fn leaf_spine_ports_get_position_dependent_thresholds() {
        let b = leaf_spine(2, 2, 1, LinkSpec::default());
        let plan = plan_tiered_thresholds(&b.topo, &TieringPolicy::default());
        // Every switch port got a directive.
        let total_ports: usize = b.switches.iter().map(|&s| b.topo.ports(s).len()).sum();
        assert_eq!(plan.directives.len(), total_ports);
        // A leaf's host-facing port: downstream (20 KB). A leaf's
        // spine-facing port: upstream (80 KB).
        let leaf = b.switches[0];
        let host_port = b.topo.port_towards(leaf, b.hosts[0]).unwrap().port;
        let spine_port = b.topo.port_towards(leaf, b.switches[2]).unwrap().port;
        let get = |n: NodeId, p: PortNo| {
            plan.directives
                .iter()
                .find(|d| d.node == n && d.port == p)
                .copied()
                .unwrap()
        };
        assert_eq!(get(leaf, host_port).xoff, Bytes::from_kb(20));
        assert_eq!(get(leaf, spine_port).xoff, Bytes::from_kb(80));
        // Spine (tier 2) ingress from a leaf (below): downstream base plus
        // one tier bonus = 20 + 40.
        let spine = b.switches[2];
        let from_leaf = b.topo.port_towards(spine, leaf).unwrap().port;
        assert_eq!(get(spine, from_leaf).xoff, Bytes::from_kb(60));
        // XON is half of XOFF.
        assert_eq!(get(spine, from_leaf).xon, Bytes::from_kb(30));
    }

    #[test]
    fn fat_tree_cores_get_the_biggest_absorption() {
        let b = fat_tree(4, LinkSpec::default());
        let plan = plan_tiered_thresholds(&b.topo, &TieringPolicy::default());
        let core = *b
            .switches
            .iter()
            .find(|&&s| b.topo.node(s).tier == Some(3))
            .unwrap();
        let d = plan.directives.iter().find(|d| d.node == core).unwrap();
        // Core ingress (all peers are aggs, below): 20 + 2*40 = 100 KB.
        assert_eq!(d.xoff, Bytes::from_kb(100));
    }

    #[test]
    fn plan_applies_to_simulator() {
        use pfcsim_net::config::SimConfig;
        use pfcsim_net::sim::SimBuilder;
        let b = leaf_spine(2, 2, 1, LinkSpec::default());
        let mut cfg = SimConfig::default();
        // The plan's largest threshold must fit the shared buffer.
        cfg.switch_buffer = Bytes::from_mb(12);
        let mut sim = SimBuilder::new(&b.topo).config(cfg).build();
        plan_tiered_thresholds(&b.topo, &TieringPolicy::default()).apply(&mut sim);
    }
}
