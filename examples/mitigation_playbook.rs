//! The §4 playbook: take the Fig. 4 deadlock and defuse it five ways.
//!
//! ```sh
//! cargo run --example mitigation_playbook
//! ```

use pfcsim::prelude::*;

/// Build the Fig. 4 scenario (square A–D, flows 1–3) on `cfg`; optionally
/// shape flow 3's ingress; optionally make the flows DCQCN-controlled.
fn fig4_sim(mut cfg: SimConfig, limiter: Option<BitRate>, dcqcn: bool) -> NetSim {
    let built = square(LinkSpec::default());
    let (s, h) = (&built.switches, &built.hosts);
    if dcqcn {
        cfg.ecn = Some(EcnConfig {
            kmin: Bytes::from_kb(5),
            kmax: Bytes::from_kb(40),
            pmax: 0.2,
            phantom_drain_permille: None,
        });
    }
    let mut sim = SimBuilder::new(&built.topo).config(cfg).build();
    if dcqcn {
        sim.set_dcqcn(DcqcnConfig::for_line_rate(BitRate::from_gbps(40)));
    }
    let mut flows = vec![
        FlowSpec::infinite(1, h[0], h[3]).pinned(vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
        FlowSpec::infinite(2, h[2], h[1]).pinned(vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
        FlowSpec::infinite(3, h[1], h[2]).pinned(vec![h[1], s[1], s[2], h[2]]),
    ];
    if dcqcn {
        for f in &mut flows {
            f.demand = Demand::Dcqcn;
        }
    }
    for f in flows {
        sim.add_flow(f);
    }
    if let Some(rate) = limiter {
        let rx2 = built.topo.port_towards(s[1], h[1]).expect("host link").port;
        sim.try_set_ingress_shaper(s[1], rx2, rate, Bytes::from_kb(2))
            .expect("set_ingress_shaper");
    }
    sim
}

fn verdict(name: &str, mut sim: NetSim) -> bool {
    let r = sim.run(SimTime::from_ms(5));
    let dl = r.verdict.is_deadlock();
    println!(
        "{name:<42} deadlock={:<5} pause_frames={}",
        dl, r.stats.pause_frames
    );
    dl
}

fn main() {
    println!("The Fig. 4 deadlock, and every way §4 offers to avoid it:\n");

    // 0. Baseline: deadlock.
    assert!(verdict(
        "baseline (UDP, flat thresholds)",
        fig4_sim(SimConfig::default(), None, false)
    ));

    // 1. Rate limiting (Case 3 / Fig. 5): shape flow 3 below the crossover.
    assert!(!verdict(
        "rate limiting: flow3 capped at 2 Gbps",
        fig4_sim(SimConfig::default(), Some(BitRate::from_gbps(2)), false)
    ));

    // 2. TTL classes: one PFC class per hop band.
    let mut cfg = SimConfig::default();
    cfg.ttl_class_mode = Some(TtlClassConfig {
        width: 1,
        base_class: 0,
        classes: 4,
    });
    assert!(!verdict(
        "TTL classes: width 1, 4 classes",
        fig4_sim(cfg, None, false)
    ));

    // 3. Structured buffer pool (the §2 baseline): hop-laddered classes.
    let mut cfg = SimConfig::default();
    cfg.hop_class_mode = Some(4);
    assert!(!verdict(
        "buffer classes: hop ladder, 4 classes",
        fig4_sim(cfg, None, false)
    ));

    // 4. Preventing PFC generation: DCQCN congestion control.
    assert!(!verdict(
        "DCQCN end-to-end congestion control",
        fig4_sim(SimConfig::default(), None, true)
    ));

    // 5. Routing restriction (the other §2 baseline) — not a runtime knob:
    //    the planner proves the flow set deadlock-free or rejects it.
    let built = square(LinkSpec::default());
    let tables = shortest_path_tables(&built.topo);
    let (s, h) = (&built.switches, &built.hosts);
    let fig4_paths = vec![
        FlowSpec::infinite(1, h[0], h[3]).pinned(vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
        FlowSpec::infinite(2, h[2], h[1]).pinned(vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
        FlowSpec::infinite(3, h[1], h[2]).pinned(vec![h[1], s[1], s[2], h[2]]),
    ];
    match verify_workload(&built.topo, &tables, &fig4_paths) {
        Ok(()) => println!(
            "{:<42} deadlock=false (verified acyclic)",
            "routing restriction: Fig. 4 paths"
        ),
        Err(FreedomViolation::CyclicDependency(cycle)) => {
            println!(
                "{:<42} REJECTED: CBD of {} queues — restricted routing would re-path them",
                "routing restriction: admission check",
                cycle.len()
            );
            // And indeed the unrestricted shortest-path routes for the same
            // endpoints are acyclic here: re-pathing removes the CBD.
            let repathed = vec![
                FlowSpec::infinite(1, h[0], h[3]),
                FlowSpec::infinite(2, h[2], h[1]),
                FlowSpec::infinite(3, h[1], h[2]),
            ];
            let ok = verify_workload(&built.topo, &tables, &repathed).is_ok();
            println!(
                "{:<42} deadlock={} (same endpoints, re-pathed)",
                "routing restriction: after re-pathing", !ok
            );
        }
        Err(e) => println!("routing check failed: {e:?}"),
    }

    println!("\nEvery §4 mitigation defuses the deadlock without eliminating the CBD —");
    println!("the paper's thesis: target the *sufficient* conditions, not the necessary one.");
}
