//! The limits of flow-level analysis, live: run the fluid model and the
//! packet simulator side by side on Figures 3 and 4.
//!
//! ```sh
//! cargo run --example fluid_vs_packet
//! ```

use pfcsim::prelude::*;

fn main() {
    for with_flow3 in [false, true] {
        let label = if with_flow3 {
            "Fig. 4 (3 flows)"
        } else {
            "Fig. 3 (2 flows)"
        };
        println!("--- {label} ---");

        let b = square(LinkSpec::default());
        let (s, h) = (&b.switches, &b.hosts);
        let mut fluid_flows = vec![
            FluidFlow {
                id: FlowId(1),
                demand: None,
                path: vec![h[0], s[0], s[1], s[2], s[3], h[3]],
            },
            FluidFlow {
                id: FlowId(2),
                demand: None,
                path: vec![h[2], s[2], s[3], s[0], s[1], h[1]],
            },
        ];
        if with_flow3 {
            fluid_flows.push(FluidFlow {
                id: FlowId(3),
                demand: None,
                path: vec![h[1], s[1], s[2], h[2]],
            });
        }
        let n = fluid_flows.len();

        // Flow-level (fluid) prediction.
        let fluid = FluidNetwork::new(&b.topo, fluid_flows, FluidConfig::default()).run(20_000);
        print!("fluid : ");
        for i in 1..=n {
            print!("flow{i}={:.1}G ", fluid.throughput[&FlowId(i as u32)] / 1e9);
        }
        println!("deadlock={}", fluid.deadlock);

        // Packet-level reality.
        let mut sim = SimBuilder::new(&b.topo)
            .config(SimConfig::default())
            .build();
        sim.add_flow(
            FlowSpec::infinite(1, h[0], h[3]).pinned(vec![h[0], s[0], s[1], s[2], s[3], h[3]]),
        );
        sim.add_flow(
            FlowSpec::infinite(2, h[2], h[1]).pinned(vec![h[2], s[2], s[3], s[0], s[1], h[1]]),
        );
        if with_flow3 {
            sim.add_flow(FlowSpec::infinite(3, h[1], h[2]).pinned(vec![h[1], s[1], s[2], h[2]]));
        }
        let packet = sim.run(SimTime::from_ms(5));
        print!("packet: ");
        for i in 1..=n {
            let bps = packet.stats.flows[&FlowId(i as u32)]
                .meter
                .average_bps(SimTime::ZERO, packet.end_time)
                .unwrap_or(0.0);
            print!("flow{i}={:.1}G ", bps / 1e9);
        }
        println!("deadlock={}\n", packet.verdict.is_deadlock());

        if with_flow3 {
            assert!(!fluid.deadlock && packet.verdict.is_deadlock());
        }
    }
    println!("The fluid model calls both scenarios healthy 20 Gbps steady states.");
    println!("The packet simulator shows Fig. 4 freezing — deadlock is a packet-level");
    println!("phenomenon, which is the paper's entire point (§3.2).");
}
