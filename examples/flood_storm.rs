//! The production deadlock the paper builds its §2 argument on (Guo et
//! al., SIGCOMM 2016): lossless traffic flooded by L2 switches breaks the
//! up–down guarantee and freezes a Clos fabric.
//!
//! ```sh
//! cargo run --example flood_storm
//! ```

use pfcsim::prelude::*;

fn run(flood_on_miss: bool) -> RunReport {
    let built = leaf_spine(2, 2, 2, LinkSpec::default());
    let tables = up_down_tables(&built.topo);
    // The guarantee holds — for the routes as installed.
    verify_all_pairs(&built.topo, &tables, Priority::DEFAULT)
        .expect("valley-free routing is deadlock-free");

    let mut cfg = SimConfig::default();
    cfg.flood_on_miss = flood_on_miss;
    cfg.stop_on_deadlock = false;
    let mut sim = SimBuilder::new(&built.topo)
        .config(cfg)
        .tables(tables)
        .build();

    let victim_dst = built.hosts[2];
    sim.add_flow(FlowSpec::infinite(1, built.hosts[0], victim_dst).with_ttl(6));
    sim.add_flow(FlowSpec::infinite(2, built.hosts[3], built.hosts[1]).with_ttl(6));
    // t = 50 µs: the fabric "forgets" the victim's address (the real
    // incident involved a NIC bug making a server's MAC unlearnable).
    for sw in built.switches.clone() {
        sim.schedule_route_update(SimTime::from_us(50), sw, victim_dst, vec![]);
    }
    sim.run(SimTime::from_ms(5))
}

fn main() {
    println!("--- L3 semantics: drop on route miss ---");
    let l3 = run(false);
    print!("{}", l3.summary());
    assert!(!l3.verdict.is_deadlock());

    println!("\n--- L2 semantics: flood on route miss (the real incident) ---");
    let l2 = run(true);
    print!("{}", l2.summary());
    println!(
        "flood replicas: {}, misdelivered copies: {}",
        l2.stats.flood_replicas, l2.stats.misdelivered
    );
    assert!(l2.verdict.is_deadlock());

    println!();
    println!("Same fabric, same verified deadlock-free routing, same traffic.");
    println!("The only difference is what a switch does with a packet it has no");
    println!("route for. Flooding the lossless class sends it down non-up-down");
    println!("paths, builds the forbidden cycle, and the fabric never recovers —");
    println!("\"even for tree-based topology, cyclic buffer dependency can still");
    println!("occur if up-down routing is not strictly followed\" (paper, §2).");
}
