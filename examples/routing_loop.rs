//! Case 1 (paper §3.1) as a runnable demo: a routing loop between two
//! switches deadlocks iff the injection rate exceeds n·B/TTL.
//!
//! ```sh
//! cargo run --example routing_loop               # sweep around the threshold
//! cargo run --example routing_loop -- 7 16       # one point: 7 Gbps, TTL 16
//! ```

use pfcsim::prelude::*;

fn run_point(rate_gbps: u64, ttl: u8) -> (bool, bool, u64) {
    let built = two_switch_loop(LinkSpec::default());
    let mut tables = shortest_path_tables(&built.topo);
    // The misconfiguration: traffic for hB circulates A -> B -> A -> ...
    install_cycle_route(
        &built.topo,
        &mut tables,
        &[built.switches[0], built.switches[1]],
        built.hosts[1],
    );
    let model = BoundaryModel::new(2, BitRate::from_gbps(40), ttl as u32);
    let rate = BitRate::from_gbps(rate_gbps);
    let mut sim = SimBuilder::new(&built.topo)
        .config(SimConfig::default())
        .tables(tables)
        .build();
    sim.add_flow(FlowSpec::cbr(0, built.hosts[0], built.hosts[1], rate).with_ttl(ttl));
    let report = sim.run(SimTime::from_ms(25));
    (
        model.predicts_deadlock(rate),
        report.verdict.is_deadlock(),
        report.stats.drops_ttl,
    )
}

/// Follow one packet around the loop (lifecycle tracing).
fn narrate_one_packet() {
    let built = two_switch_loop(LinkSpec::default());
    let mut tables = shortest_path_tables(&built.topo);
    install_cycle_route(
        &built.topo,
        &mut tables,
        &[built.switches[0], built.switches[1]],
        built.hosts[1],
    );
    let mut sim = SimBuilder::new(&built.topo)
        .config(SimConfig::default())
        .tables(tables)
        .build();
    sim.add_flow(
        FlowSpec::cbr(0, built.hosts[0], built.hosts[1], BitRate::from_gbps(1)).with_ttl(8),
    );
    sim.trace_flows([FlowId(0)]);
    let report = sim.run(SimTime::from_us(50));
    let by_pkt = by_packet(&report.stats.trace);
    println!("\nlife of packet 0 (TTL 8, trapped in the A<->B loop):");
    for ev in &by_pkt[&0] {
        match ev {
            TraceEvent::Injected { t, src, .. } => println!("  {t}: injected at {src}"),
            TraceEvent::Hop { t, node, ttl, .. } => {
                println!(
                    "  {t}: hop via {} (ttl now {ttl})",
                    built.topo.node(*node).name
                )
            }
            TraceEvent::Delivered { t, host, .. } => println!("  {t}: delivered at {host}"),
            TraceEvent::Dropped {
                t, node, reason, ..
            } => println!(
                "  {t}: DROPPED at {} ({reason:?}) — the loop's only drain",
                built.topo.node(*node).name
            ),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let points: Vec<(u64, u8)> = if args.len() >= 2 {
        vec![(
            args[0].parse().expect("rate in Gbps"),
            args[1].parse().expect("TTL"),
        )]
    } else {
        (2..=8).map(|g| (g, 16)).collect()
    };

    println!("two-switch routing loop, B = 40 Gbps (threshold = n*B/TTL)");
    println!(
        "{:>10} {:>5} {:>10} {:>10} {:>10}",
        "rate_gbps", "ttl", "predicted", "simulated", "ttl_drops"
    );
    for (g, ttl) in points {
        let (pred, sim, drops) = run_point(g, ttl);
        println!(
            "{:>10} {:>5} {:>10} {:>10} {:>10}",
            g,
            ttl,
            if pred { "deadlock" } else { "safe" },
            if sim { "deadlock" } else { "safe" },
            drops
        );
        assert_eq!(pred, sim, "Eq. 3 and the simulator must agree");
    }
    println!("\nEvery row agrees with Eq. 3 — the boundary-state model is exact here.");
    narrate_one_packet();
}
