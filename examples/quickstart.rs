//! Quickstart: build a fabric, run lossless traffic, check for deadlock.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pfcsim::prelude::*;

fn main() {
    // 1. A leaf-spine fabric: 2 leaves, 2 spines, 2 hosts per leaf,
    //    40 Gbps links (the paper's setup parameters are the defaults).
    let built = leaf_spine(2, 2, 2, LinkSpec::default());

    // 2. Valley-free (up-down) routing — deadlock-free by construction.
    let tables = up_down_tables(&built.topo);
    verify_all_pairs(&built.topo, &tables, Priority::DEFAULT)
        .expect("up-down routing has no cyclic buffer dependency");
    println!("routing verified deadlock-free (Dally–Seitz: BDG is acyclic)");

    // 3. A 3:1 incast onto host 0 plus a crossing flow.
    let mut sim = SimBuilder::new(&built.topo)
        .config(SimConfig::default())
        .tables(tables)
        .build();
    for (i, &src) in built.hosts[1..].iter().enumerate() {
        sim.add_flow(FlowSpec::infinite(i as u32 + 1, src, built.hosts[0]));
    }

    // 4. Run 2 ms of simulated time.
    let report = sim.run(SimTime::from_ms(2));

    print!("{}", report.summary());

    // 5. The paper's boundary-state model, for reference (Eq. 3).
    let model = BoundaryModel::new(2, BitRate::from_gbps(40), 16);
    println!(
        "Eq. 3: a 2-switch loop at 40 Gbps with TTL 16 deadlocks above {}",
        model.deadlock_threshold()
    );

    assert!(!report.verdict.is_deadlock());
    assert_eq!(
        report.stats.drops_overflow, 0,
        "lossless network must not drop"
    );
}
