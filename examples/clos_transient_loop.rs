//! The paper's §1 motivation, end to end: "transient loops will disappear
//! by themselves soon, [but] deadlocks caused by them are not transient."
//!
//! A leaf-spine fabric runs correct up–down routing. At t = 100 µs a
//! BGP-reroute-style misconfiguration installs a 2-switch forwarding loop
//! for one destination; at t = 400 µs the routes are repaired. The loop
//! existed for only 300 µs — the deadlock it caused lasts forever.
//!
//! ```sh
//! cargo run --example clos_transient_loop
//! ```

use pfcsim::prelude::*;

fn run(with_loop_window: bool) -> RunReport {
    let built = leaf_spine(2, 2, 2, LinkSpec::default());
    let tables = up_down_tables(&built.topo);
    let leaf0 = built.switches[0];
    let spine0 = built.switches[2];
    let dst = built.hosts[2]; // a host on leaf 1

    let mut cfg = SimConfig::default();
    cfg.stop_on_deadlock = false; // watch the whole timeline
    let mut sim = SimBuilder::new(&built.topo)
        .config(cfg)
        .tables(tables)
        .build();

    // Victim flow: host 0 (leaf 0) -> host 2 (leaf 1), line-rate RoCE-style
    // traffic with the IP-default TTL of 64.
    sim.add_flow(FlowSpec::infinite(1, built.hosts[0], dst).with_ttl(64));
    // Background flow the other way (shows collateral damage).
    sim.add_flow(FlowSpec::infinite(2, built.hosts[3], built.hosts[1]).with_ttl(64));

    if with_loop_window {
        // t=100us: leaf0 points dst up to spine0 AND spine0 points dst back
        // down to leaf0 — a classic transient micro-loop during reroute.
        let up = built
            .topo
            .port_towards(leaf0, spine0)
            .expect("fabric link")
            .port;
        let down = built
            .topo
            .port_towards(spine0, leaf0)
            .expect("fabric link")
            .port;
        sim.schedule_route_update(SimTime::from_us(100), leaf0, dst, vec![up]);
        sim.schedule_route_update(SimTime::from_us(100), spine0, dst, vec![down]);
        // t=400us: repair — spine0 forwards down to leaf1 again.
        let correct = built
            .topo
            .port_towards(spine0, built.switches[1])
            .expect("fabric link")
            .port;
        sim.schedule_route_update(SimTime::from_us(400), spine0, dst, vec![correct]);
    }

    sim.run(SimTime::from_ms(3))
}

fn main() {
    println!("--- control run: no misconfiguration ---");
    let clean = run(false);
    println!("deadlock: {}", clean.verdict.is_deadlock());
    assert!(!clean.verdict.is_deadlock());

    println!("\n--- 300 us transient loop between leaf0 and spine0 ---");
    let looped = run(true);
    match &looped.verdict {
        Verdict::Deadlock {
            detected_at,
            witness,
        } => {
            println!("deadlock detected at {detected_at} (loop repaired at 400 us!)");
            println!("frozen channels:");
            for k in witness {
                println!("  {} -> {} ({})", k.from, k.to, k.priority);
            }
        }
        Verdict::NoDeadlock => println!("no deadlock (unexpected)"),
    }
    let delivered_after_repair = looped
        .stats
        .flows
        .values()
        .filter_map(|f| f.meter.last_delivery())
        .max()
        .unwrap_or(SimTime::ZERO);
    println!(
        "last delivery anywhere in the fabric: {delivered_after_repair} \
         (horizon was 3 ms — the fabric never recovered)"
    );
    assert!(
        looped.verdict.is_deadlock(),
        "the transient loop must leave a permanent deadlock"
    );
    println!(
        "\nThe deadlock outlived the misconfiguration: \"deadlocks cannot recover \
         automatically even after the problems that cause them have been fixed\" (§1)."
    );
}
